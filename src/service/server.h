// PrivHPServer — the long-running ingest/serve front end.
//
// Serving topology: one acceptor thread per listener (TCP and/or
// Unix-domain), a shared connection queue, and a pool of worker threads
// that each serve one connection at a time, request-by-request. Released
// artifacts come from an ArtifactRegistry; reads (SAMPLE / RANGE /
// QUANTILE / HEAVY / EXPORT) are lock-free post-processing of the
// artifact the worker's shared_ptr pins, and INGEST streams the
// connection's point frames straight into PrivHPBuilder::BuildParallel,
// publishing the finished generator atomically — readers never observe a
// half-built artifact.
//
// Randomness: workers never share a RandomEngine. Each worker owns one
// engine (forked from the server seed) for seedless SAMPLE requests, and
// a seeded SAMPLE gets a fresh engine so the response is reproducible no
// matter which worker serves it. Sampling state is the CompiledSampler
// alias table built once inside each published PrivHPGenerator: it is
// immutable after construction, so every concurrent SAMPLE request
// pinning the artifact shares the one compiled table race-free — no
// per-request sampler construction on the hot path.

#ifndef PRIVHP_SERVICE_SERVER_H_
#define PRIVHP_SERVICE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "io/frame_socket.h"
#include "obs/metrics_registry.h"
#include "service/artifact_registry.h"
#include "service/protocol.h"
#include "service/service_metrics.h"

namespace privhp {

/// \brief Listener and pool configuration.
struct ServerOptions {
  /// Unix-domain socket path; empty disables the Unix listener.
  std::string unix_path;

  /// TCP port; -1 disables the TCP listener, 0 binds an ephemeral port
  /// (read it back via PrivHPServer::tcp_port()).
  int tcp_port = -1;

  /// TCP bind address.
  std::string tcp_host = "127.0.0.1";

  /// Worker threads (concurrent connections served).
  int num_workers = 4;

  /// Seed for the per-worker engine pool (seedless SAMPLE requests).
  uint64_t seed = 1;

  /// Points per SAMPLE response frame (bounds server-side memory per
  /// request regardless of m).
  size_t sample_batch = 4096;

  /// Largest m a single SAMPLE request may ask for (0 = unlimited). A
  /// 13-byte request should not be able to park a worker for hours.
  uint64_t max_sample_points = uint64_t{1} << 24;

  /// Upper bound accepted for an INGEST request's thread count.
  int max_ingest_threads = 16;

  /// Bytes per EXPORT chunk frame (clamped to the frame limit). The
  /// blob streams across as many frames as it needs, so artifacts
  /// larger than one frame export fine; this only tunes frame count vs
  /// per-frame memory.
  size_t export_chunk_bytes = 4u << 20;

  /// Send timeout (seconds) on accepted connections, so a peer that
  /// stops reading mid-response errors the worker out instead of
  /// blocking it forever (0 = no timeout).
  int send_timeout_seconds = 30;

  /// Idle receive timeout (seconds): a connection that sends no request
  /// for this long is dropped, so num_workers stalled peers cannot park
  /// every worker forever while accepted connections queue up
  /// (0 = no timeout).
  int idle_timeout_seconds = 300;

  /// Metrics registry the server records into (per-endpoint latency and
  /// byte histograms, queue/worker gauges, pipeline counters — served
  /// back over the STATS op). Not owned; must outlive the server. When
  /// null the server creates and owns a private registry, so
  /// instrumentation is always on — recording is a couple of relaxed
  /// atomic adds per request, cheap enough to never gate.
  obs::MetricsRegistry* metrics = nullptr;
};

/// \brief Running server over a registry. Start() spawns the threads;
/// Stop() (or destruction) joins them.
class PrivHPServer {
 public:
  /// \brief Starts listeners and workers. \p registry is not owned and
  /// must outlive the server.
  static Result<std::unique_ptr<PrivHPServer>> Start(
      ArtifactRegistry* registry, const ServerOptions& options);

  ~PrivHPServer();

  PrivHPServer(const PrivHPServer&) = delete;
  PrivHPServer& operator=(const PrivHPServer&) = delete;

  /// \brief Signals shutdown and joins all threads. Idempotent.
  void Stop();

  /// \brief Bound TCP port (0 when the TCP listener is disabled).
  uint16_t tcp_port() const { return tcp_port_; }

  const ServerOptions& options() const { return options_; }

  /// \brief Monotonic counters, snapshot at call time.
  struct Stats {
    uint64_t connections = 0;
    uint64_t requests = 0;
    uint64_t errors = 0;
    uint64_t sampled_points = 0;
    uint64_t ingested_points = 0;
    uint64_t ingests_published = 0;
    /// Times a listener entered a sustained accept-failure streak
    /// (>= 16 consecutive failures); the loop keeps retrying with
    /// capped backoff, but a non-zero value means some endpoint has
    /// been refusing connections and deserves a look.
    uint64_t listener_failure_streaks = 0;
  };
  Stats stats() const;

  /// \brief Everything the server knows about itself, merged into one
  /// snapshot: the metrics registry's counters/gauges/histograms, the
  /// legacy Stats counters (as "server.*"), and snapshot-time registry
  /// and per-artifact gauges ("registry.*", "artifact.<name>.*",
  /// aggregated buffer-pool counters under "pool.*"). This is the
  /// payload the STATS op encodes.
  obs::MetricsSnapshot StatsSnapshot() const;

  /// \brief The registry this server records into (the configured one,
  /// or the server-owned fallback).
  obs::MetricsRegistry* metrics_registry() const { return metrics_registry_; }

 private:
  PrivHPServer(ArtifactRegistry* registry, ServerOptions options);

  /// Per-request bookkeeping threaded through dispatch: which endpoint's
  /// metrics to charge, and the response bytes written so far (every
  /// frame sent on behalf of the request accumulates here, so SAMPLE's
  /// many point frames and EXPORT's chunk frames all count).
  struct RequestScope {
    EndpointMetrics* ep = nullptr;
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
  };

  Status StartListeners();
  void AcceptLoop(Socket listener);
  void WorkerLoop(int worker_index);
  void ServeConnection(const Socket& conn, RandomEngine* engine);

  /// Dispatch helpers return a non-OK Status only for transport failures
  /// (the connection is then dropped); application errors travel back to
  /// the client as error responses.
  Status Dispatch(const Socket& conn, const ServiceRequest& req,
                  RandomEngine* engine, RequestScope* scope);
  Status HandleSample(const Socket& conn, const ServiceRequest& req,
                      RandomEngine* engine, RequestScope* scope);
  Status HandleExport(const Socket& conn, const ServedArtifact& artifact,
                      RequestScope* scope);
  Status HandleIngest(const Socket& conn, const ServiceRequest& req,
                      RequestScope* scope);
  Status HandleStats(const Socket& conn, RequestScope* scope);
  Status SendError(const Socket& conn, const Status& error,
                   RequestScope* scope);
  /// SendFrame that charges the frame to the request's bytes-out.
  Status SendCounted(const Socket& conn, const std::string& frame,
                     RequestScope* scope);

  ArtifactRegistry* registry_;
  ServerOptions options_;
  uint16_t tcp_port_ = 0;

  // Metrics plumbing: resolved once here, recorded into lock-free from
  // the workers. owned_metrics_ backs metrics_registry_ only when the
  // options did not supply a registry.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_registry_ = nullptr;
  std::unique_ptr<ServiceMetrics> metrics_;

  std::atomic<bool> stopping_{false};
  std::vector<Socket> listeners_;
  std::vector<std::thread> acceptors_;
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  /// Accepted connections awaiting a worker, stamped at enqueue time so
  /// the dequeuing worker can record the queue-wait histogram.
  struct PendingConn {
    Socket sock;
    std::chrono::steady_clock::time_point enqueued;
  };
  std::deque<PendingConn> pending_;

  struct AtomicStats {
    std::atomic<uint64_t> connections{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> sampled_points{0};
    std::atomic<uint64_t> ingested_points{0};
    std::atomic<uint64_t> ingests_published{0};
    std::atomic<uint64_t> listener_failure_streaks{0};
  };
  AtomicStats stats_;
};

}  // namespace privhp

#endif  // PRIVHP_SERVICE_SERVER_H_
