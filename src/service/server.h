// PrivHPServer — the long-running ingest/serve front end.
//
// Serving topology: one reactor thread owning an epoll event loop (all
// listener and connection fds, readiness-driven, non-blocking framed
// I/O) plus a CPU pool of worker threads that execute parsed requests.
// The reactor parses request frames ahead of execution, so one
// connection can pipeline many requests; requests on a connection run
// one at a time in arrival order (responses come back in request
// order), while different connections execute in parallel across the
// pool. Workers never touch sockets: they append response frames to the
// connection's output queue and the reactor writes them out as the peer
// drains.
//
// Backpressure: each connection's queued-but-unsent response bytes are
// bounded. A streaming response (SAMPLE / EXPORT) that reaches the
// high-water mark parks its generation state on the connection and
// returns the worker to the pool; the reactor resumes it when the peer
// drains below the low-water mark. A peer that stops reading makes no
// write progress, so the stall eventually trips send_timeout_seconds /
// idle_timeout_seconds and the connection is dropped (classified as a
// backpressure drop when output was pending, an idle drop otherwise).
//
// Released artifacts come from an ArtifactRegistry; reads (SAMPLE /
// RANGE / QUANTILE / HEAVY / EXPORT) are lock-free post-processing of
// the artifact the request's shared_ptr pins, and INGEST streams the
// connection's point frames (forwarded by the reactor through a bounded
// per-connection channel) straight into PrivHPBuilder::BuildParallel,
// publishing the finished generator atomically — readers never observe
// a half-built artifact.
//
// Randomness: workers never share a RandomEngine. Each worker owns one
// engine (forked from the server seed); a seeded SAMPLE gets a fresh
// engine so the response is reproducible no matter which worker serves
// it, and a seedless SAMPLE derives a per-request engine from the
// worker's own (advancing it), so concurrent fresh samples never
// correlate. Sampling state is the CompiledSampler alias table built
// once inside each published PrivHPGenerator: it is immutable after
// construction, so every concurrent SAMPLE request pinning the artifact
// shares the one compiled table race-free.

#ifndef PRIVHP_SERVICE_SERVER_H_
#define PRIVHP_SERVICE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/sync.h"
#include "common/status.h"
#include "io/frame_socket.h"
#include "obs/metrics_registry.h"
#include "service/artifact_registry.h"
#include "service/event_loop.h"
#include "service/protocol.h"
#include "service/service_metrics.h"

namespace privhp {

/// \brief Listener and pool configuration.
struct ServerOptions {
  /// Unix-domain socket path; empty disables the Unix listener.
  std::string unix_path;

  /// TCP port; -1 disables the TCP listener, 0 binds an ephemeral port
  /// (read it back via PrivHPServer::tcp_port()).
  int tcp_port = -1;

  /// TCP bind address.
  std::string tcp_host = "127.0.0.1";

  /// Worker threads (requests executing concurrently across connections).
  int num_workers = 4;

  /// Seed for the per-worker engine pool (seedless SAMPLE requests).
  uint64_t seed = 1;

  /// Points per SAMPLE response frame (bounds server-side memory per
  /// request regardless of m).
  size_t sample_batch = 4096;

  /// Largest m a single SAMPLE request may ask for (0 = unlimited). A
  /// 13-byte request should not be able to occupy the server for hours.
  uint64_t max_sample_points = uint64_t{1} << 24;

  /// Upper bound accepted for an INGEST request's thread count.
  int max_ingest_threads = 16;

  /// Bytes per EXPORT chunk frame (clamped to the frame limit). The
  /// blob streams across as many frames as it needs, so artifacts
  /// larger than one frame export fine; this only tunes frame count vs
  /// per-frame memory.
  size_t export_chunk_bytes = 4u << 20;

  /// Write-stall bound (seconds): a connection with queued response
  /// bytes and no write progress for this long is dropped as a
  /// backpressure casualty (0 = only idle_timeout_seconds applies).
  int send_timeout_seconds = 30;

  /// Idle timeout (seconds): a connection with no inbound frames, no
  /// executing request and no pending output for this long is dropped
  /// (0 = no timeout). It also bounds a stalled peer mid-INGEST (the
  /// stream channel applies it between frames) and is the fallback
  /// drop deadline for write-stalled peers.
  int idle_timeout_seconds = 300;

  /// Preshared token for TCP connections: when non-empty, a TCP
  /// connection's first frame must be an AUTH request carrying exactly
  /// this token; anything else is answered with an error and the
  /// connection is dropped. Unix-domain connections are exempt
  /// (filesystem permissions already gate them), but a wrong token is
  /// rejected on any transport.
  std::string auth_token;

  /// Per-connection high-water mark on queued-but-unsent response bytes.
  /// Streaming producers park at the mark and resume once the queue
  /// drains below half of it; the queue never exceeds the mark by more
  /// than one frame.
  size_t max_output_queue_bytes = 4u << 20;

  /// Per-connection cap on parsed-but-unexecuted pipelined requests;
  /// past it the reactor stops reading from the peer, which shows up to
  /// the client as ordinary TCP backpressure.
  int max_pipeline_requests = 64;

  /// Metrics registry the server records into (per-endpoint latency and
  /// byte histograms, queue/worker gauges, connection lifecycle
  /// counters — served back over the STATS op). Not owned; must outlive
  /// the server. When null the server creates and owns a private
  /// registry, so instrumentation is always on — recording is a couple
  /// of relaxed atomic adds per request, cheap enough to never gate.
  obs::MetricsRegistry* metrics = nullptr;
};

/// \brief Running server over a registry. Start() spawns the threads;
/// Stop() (or destruction) joins them.
class PrivHPServer {
 public:
  /// \brief Starts the reactor and workers. \p registry is not owned and
  /// must outlive the server.
  static Result<std::unique_ptr<PrivHPServer>> Start(
      ArtifactRegistry* registry, const ServerOptions& options);

  ~PrivHPServer();

  PrivHPServer(const PrivHPServer&) = delete;
  PrivHPServer& operator=(const PrivHPServer&) = delete;

  /// \brief Signals shutdown and joins all threads. Idempotent.
  void Stop();

  /// \brief Bound TCP port (0 when the TCP listener is disabled).
  uint16_t tcp_port() const { return tcp_port_; }

  const ServerOptions& options() const { return options_; }

  /// \brief Monotonic counters, snapshot at call time.
  struct Stats {
    uint64_t connections = 0;
    uint64_t requests = 0;
    uint64_t errors = 0;
    uint64_t sampled_points = 0;
    uint64_t ingested_points = 0;
    uint64_t ingests_published = 0;
    /// Times a listener entered a sustained accept-failure streak
    /// (>= 16 consecutive failures); the reactor keeps retrying with
    /// capped backoff, but a non-zero value means some endpoint has
    /// been refusing connections and deserves a look.
    uint64_t listener_failure_streaks = 0;
  };
  Stats stats() const;

  /// \brief Everything the server knows about itself, merged into one
  /// snapshot: the metrics registry's counters/gauges/histograms, the
  /// legacy Stats counters (as "server.*"), and snapshot-time registry
  /// and per-artifact gauges ("registry.*", "artifact.<name>.*",
  /// aggregated buffer-pool counters under "pool.*"). This is the
  /// payload the STATS op encodes.
  obs::MetricsSnapshot StatsSnapshot() const;

  /// \brief The registry this server records into (the configured one,
  /// or the server-owned fallback).
  obs::MetricsRegistry* metrics_registry() const { return metrics_registry_; }

 private:
  struct Connection;
  struct ResponseStream;
  struct SampleStream;
  struct ExportStream;

  /// Why a connection was closed — drives the
  /// server.connections_dropped.* counters (kNone: ordinary close/EOF,
  /// not counted as a drop).
  enum class DropReason { kNone, kIdle, kBackpressure, kAuth };

  /// Per-request bookkeeping threaded through dispatch: which endpoint's
  /// metrics to charge, and the request/response wire payload bytes
  /// (every frame enqueued on behalf of the request accumulates here, so
  /// SAMPLE's many point frames and EXPORT's chunk frames all count).
  struct RequestScope {
    EndpointMetrics* ep = nullptr;
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
    std::chrono::steady_clock::time_point started;
  };

  /// A request frame the reactor parsed and queued for execution. A
  /// non-OK parse_error marks a poison entry: the worker answers with
  /// the error and the connection is closed after the flush.
  struct PendingRequest {
    ServiceRequest req;
    uint64_t bytes_in = 0;
    Status parse_error = Status::OK();
  };

  /// Unit of work for the CPU pool: execute a fresh request, or resume
  /// the connection's parked response stream.
  struct Task {
    std::shared_ptr<Connection> conn;
    bool resume = false;
    PendingRequest request;
    std::chrono::steady_clock::time_point enqueued;
  };

  PrivHPServer(ArtifactRegistry* registry, ServerOptions options);

  Status StartListeners();

  // ---- reactor side (single thread; owns fds, parsing, routing) ----
  void ReactorLoop();
  void AcceptPending(size_t listener_index);
  void PauseListener(size_t listener_index, const Status& error);
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  void RouteFrame(const std::shared_ptr<Connection>& conn,
                  std::string frame);
  void HandleAuthFrame(const std::shared_ptr<Connection>& conn,
                       const std::string& frame);
  void MaybeStartNext(const std::shared_ptr<Connection>& conn);
  /// Derives the routing mode from auth state and expected ingest
  /// streams.
  void RecomputeMode(const std::shared_ptr<Connection>& conn);
  /// Whether the reactor should keep EPOLLIN armed for this connection
  /// (auth/pipeline/ingest-channel caps pause reads — TCP backpressure).
  bool WantRead(const std::shared_ptr<Connection>& conn);
  /// Moves outbox frames into the writer, writes as much as the socket
  /// takes, resumes parked streams below the low-water mark, closes
  /// flush-pending connections, and refreshes epoll interest.
  void PumpConnection(const std::shared_ptr<Connection>& conn);
  void UpdateInterest(const std::shared_ptr<Connection>& conn);
  void DrainReadyList() EXCLUDES(ready_mu_);
  void SweepDeadlines(std::chrono::steady_clock::time_point now);
  void DropConnection(const std::shared_ptr<Connection>& conn,
                      DropReason reason);

  // ---- worker side (CPU pool; never touches fds) ----
  void WorkerLoop(int worker_index) EXCLUDES(task_mu_);
  void SubmitTask(Task task) EXCLUDES(task_mu_);
  /// Runs the task's request (or resumes its parked stream), then keeps
  /// draining the connection's pending pipeline inline while requests
  /// complete cleanly — up to a fairness budget, after which the slot
  /// goes back through the reactor and the task queue.
  void ExecuteTask(Task task, RandomEngine* engine);
  /// The bool these three return means "the execution slot is still
  /// held by this worker and the connection's next pipelined request
  /// may run inline". false = the slot was handed to the reactor
  /// (request_done set) or stays parked with a stream.
  bool ExecuteRequest(const std::shared_ptr<Connection>& conn,
                      PendingRequest pr, RandomEngine* engine);
  bool RunStream(std::unique_ptr<ResponseStream> stream);
  /// Records the request's metrics, then either keeps the slot with the
  /// worker (clean completion, returns true) or marks it done for the
  /// reactor (drop / ingest-stream release, returns false). Recording
  /// happens before either hand-off, so the next pipelined request on
  /// the connection observes this one's metrics.
  bool FinalizeRequest(const std::shared_ptr<Connection>& conn,
                       RequestScope* scope, bool drop_connection,
                       DropReason reason, bool ingest_stream_consumed);

  void DispatchRequest(const std::shared_ptr<Connection>& conn,
                       const ServiceRequest& req, RandomEngine* engine,
                       RequestScope* scope, bool* drop, DropReason* reason,
                       bool* stream_consumed,
                       std::unique_ptr<ResponseStream>* stream_out);
  void HandleSampleRequest(const std::shared_ptr<Connection>& conn,
                           const ServiceRequest& req, RandomEngine* engine,
                           RequestScope* scope, bool* drop,
                           std::unique_ptr<ResponseStream>* stream_out);
  void HandleExportRequest(const std::shared_ptr<Connection>& conn,
                           const ServiceRequest& req, RequestScope* scope,
                           bool* drop,
                           std::unique_ptr<ResponseStream>* stream_out);
  void HandleIngestRequest(const std::shared_ptr<Connection>& conn,
                           const ServiceRequest& req, RequestScope* scope,
                           bool* drop, DropReason* reason,
                           bool* stream_consumed);

  /// Appends one response frame to the connection's output queue and
  /// wakes the reactor; fails (IOError) once the connection is dropped.
  Status EnqueueFrame(const std::shared_ptr<Connection>& conn,
                      std::string frame, RequestScope* scope);
  Status EnqueueError(const std::shared_ptr<Connection>& conn,
                      const Status& error, RequestScope* scope);
  /// Puts \p conn on the reactor's ready list and wakes the loop.
  void NotifyConn(const std::shared_ptr<Connection>& conn) EXCLUDES(ready_mu_);

  ArtifactRegistry* registry_;
  ServerOptions options_;
  uint16_t tcp_port_ = 0;

  // Metrics plumbing: resolved once here, recorded into lock-free from
  // the workers. owned_metrics_ backs metrics_registry_ only when the
  // options did not supply a registry.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_registry_ = nullptr;
  std::unique_ptr<ServiceMetrics> metrics_;

  std::atomic<bool> stopping_{false};

  EventLoop loop_;
  std::vector<Socket> listeners_;
  struct ListenerState {
    bool is_tcp = false;
    bool paused = false;  ///< unregistered after accept failures
    int consecutive_failures = 0;
    std::chrono::steady_clock::time_point rearm_at{};
  };
  std::vector<ListenerState> listener_state_;

  std::thread reactor_;
  std::vector<std::thread> workers_;

  // Reactor-owned connection table (tag -> connection).
  uint64_t next_conn_tag_ = 0;
  std::unordered_map<uint64_t, std::shared_ptr<Connection>> conns_;

  // CPU-pool task queue.
  Mutex task_mu_;
  CondVar task_cv_;
  std::deque<Task> tasks_ GUARDED_BY(task_mu_);

  // Connections with worker-produced state the reactor must look at
  // (new response frames, request completion, parked streams).
  Mutex ready_mu_;
  std::vector<std::shared_ptr<Connection>> ready_ GUARDED_BY(ready_mu_);

  struct AtomicStats {
    std::atomic<uint64_t> connections{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> sampled_points{0};
    std::atomic<uint64_t> ingested_points{0};
    std::atomic<uint64_t> ingests_published{0};
    std::atomic<uint64_t> listener_failure_streaks{0};
  };
  AtomicStats stats_;
};

}  // namespace privhp

#endif  // PRIVHP_SERVICE_SERVER_H_
