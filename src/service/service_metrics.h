// Per-endpoint instrumentation handles for the service layer.
//
// Resolved ONCE against a MetricsRegistry when the server starts; the
// request loop then records through raw pointers — no name lookups, no
// locks on the hot path. One EndpointMetrics per wire op gives every
// endpoint its own latency / bytes-in / bytes-out histograms and
// request / error counters under "op.<name>.*", plus server-level
// queue and worker instrumentation under "server.*" and the ingest
// pipeline counters under "ingest.*".

#ifndef PRIVHP_SERVICE_SERVICE_METRICS_H_
#define PRIVHP_SERVICE_SERVICE_METRICS_H_

#include <array>

#include "obs/metrics_registry.h"
#include "service/protocol.h"

namespace privhp {

/// \brief The instrumentation one wire op records into.
struct EndpointMetrics {
  obs::Counter* requests = nullptr;
  obs::Counter* errors = nullptr;
  obs::Histogram* latency_ns = nullptr;
  obs::Histogram* bytes_in = nullptr;
  obs::Histogram* bytes_out = nullptr;
};

/// \brief Stable, display-ordered list of wire ops ("ping", "list", ...).
/// kStatsNumOps is also the bound for OpIndex below.
inline constexpr int kStatsNumOps = 10;
const char* ServiceOpName(ServiceOp op);
/// \brief Dense [0, kStatsNumOps) index for a wire op.
int ServiceOpIndex(ServiceOp op);
/// \brief The op at dense \p index (inverse of ServiceOpIndex).
ServiceOp ServiceOpAt(int index);

/// \brief All service-layer metric handles, resolved once at Start().
class ServiceMetrics {
 public:
  explicit ServiceMetrics(obs::MetricsRegistry* registry);

  EndpointMetrics& ForOp(ServiceOp op) { return ops_[ServiceOpIndex(op)]; }

  // Server-level instrumentation.
  obs::Histogram* queue_wait_ns;  ///< request parse-to-worker-dequeue wait
  obs::Gauge* queue_depth;        ///< requests awaiting a worker
  obs::Gauge* workers_busy;       ///< workers currently serving
  obs::Gauge* workers_total;      ///< configured pool size

  // Connection lifecycle (event-loop reactor).
  obs::Gauge* connections_open;          ///< currently accepted peers
  obs::Counter* dropped_idle;            ///< idle-timeout drops
  obs::Counter* dropped_backpressure;    ///< stalled-reader drops
  obs::Counter* dropped_auth;            ///< failed AUTH handshakes
  obs::Gauge* output_queue_bytes;        ///< response bytes queued, all peers

  // Ingest pipeline (points and wire batch frames absorbed by builds).
  obs::Counter* ingest_points;
  obs::Counter* ingest_batches;
  // Sampling pipeline (points streamed out of SAMPLE responses).
  obs::Counter* sample_points;

 private:
  std::array<EndpointMetrics, kStatsNumOps> ops_;
};

}  // namespace privhp

#endif  // PRIVHP_SERVICE_SERVICE_METRICS_H_
