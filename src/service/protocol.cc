#include "service/protocol.h"

#include "common/macros.h"

namespace privhp {

namespace {

void PutOpAndName(WireWriter* w, ServiceOp op, const std::string& artifact) {
  w->PutU8(static_cast<uint8_t>(op));
  w->PutString(artifact);
}

}  // namespace

std::string EncodePingRequest() {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(ServiceOp::kPing));
  return w.Take();
}

std::string EncodeListRequest() {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(ServiceOp::kList));
  return w.Take();
}

std::string EncodeSampleRequest(const std::string& artifact, uint64_t m,
                                uint64_t seed) {
  WireWriter w;
  PutOpAndName(&w, ServiceOp::kSample, artifact);
  w.PutU64(m);
  w.PutU64(seed);
  return w.Take();
}

std::string EncodeRangeRequest(const std::string& artifact, uint32_t level,
                               uint64_t index) {
  WireWriter w;
  PutOpAndName(&w, ServiceOp::kRange, artifact);
  w.PutU32(level);
  w.PutU64(index);
  return w.Take();
}

std::string EncodeQuantileRequest(const std::string& artifact,
                                  const std::vector<double>& qs) {
  WireWriter w;
  PutOpAndName(&w, ServiceOp::kQuantile, artifact);
  w.PutU32(static_cast<uint32_t>(qs.size()));
  for (double q : qs) w.PutDouble(q);
  return w.Take();
}

std::string EncodeHeavyRequest(const std::string& artifact,
                               double threshold) {
  WireWriter w;
  PutOpAndName(&w, ServiceOp::kHeavy, artifact);
  w.PutDouble(threshold);
  return w.Take();
}

std::string EncodeExportRequest(const std::string& artifact) {
  WireWriter w;
  PutOpAndName(&w, ServiceOp::kExport, artifact);
  return w.Take();
}

std::string EncodeStatsRequest() {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(ServiceOp::kStats));
  return w.Take();
}

std::string EncodeIngestRequest(const ServiceRequest& spec) {
  WireWriter w;
  PutOpAndName(&w, ServiceOp::kIngest, spec.artifact);
  w.PutU32(spec.dim);
  w.PutDouble(spec.epsilon);
  w.PutU64(spec.k);
  w.PutU64(spec.n);
  w.PutU64(spec.seed);
  w.PutU32(spec.threads);
  return w.Take();
}

std::string EncodeAuthRequest(const std::string& token) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(ServiceOp::kAuth));
  w.PutString(token);
  return w.Take();
}

Result<ServiceRequest> ParseRequest(const std::string& frame) {
  WireReader r(frame);
  ServiceRequest req;
  PRIVHP_ASSIGN_OR_RETURN(uint8_t op, r.U8());
  switch (op) {
    case static_cast<uint8_t>(ServiceOp::kPing):
    case static_cast<uint8_t>(ServiceOp::kList):
    case static_cast<uint8_t>(ServiceOp::kStats):
      req.op = static_cast<ServiceOp>(op);
      PRIVHP_RETURN_NOT_OK(r.ExpectEnd());
      return req;
    case static_cast<uint8_t>(ServiceOp::kAuth): {
      req.op = ServiceOp::kAuth;
      PRIVHP_ASSIGN_OR_RETURN(req.token, r.String());
      PRIVHP_RETURN_NOT_OK(r.ExpectEnd());
      return req;
    }
    case static_cast<uint8_t>(ServiceOp::kSample):
    case static_cast<uint8_t>(ServiceOp::kRange):
    case static_cast<uint8_t>(ServiceOp::kQuantile):
    case static_cast<uint8_t>(ServiceOp::kHeavy):
    case static_cast<uint8_t>(ServiceOp::kExport):
    case static_cast<uint8_t>(ServiceOp::kIngest):
      req.op = static_cast<ServiceOp>(op);
      break;
    default:
      return Status::InvalidArgument("unknown opcode " + std::to_string(op));
  }
  PRIVHP_ASSIGN_OR_RETURN(req.artifact, r.String());
  switch (req.op) {
    case ServiceOp::kSample: {
      PRIVHP_ASSIGN_OR_RETURN(req.m, r.U64());
      PRIVHP_ASSIGN_OR_RETURN(req.seed, r.U64());
      break;
    }
    case ServiceOp::kRange: {
      PRIVHP_ASSIGN_OR_RETURN(req.level, r.U32());
      PRIVHP_ASSIGN_OR_RETURN(req.index, r.U64());
      break;
    }
    case ServiceOp::kQuantile: {
      // 8 bytes per quantile double.
      PRIVHP_ASSIGN_OR_RETURN(uint32_t count, r.BoundedCount(8));
      req.qs.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        PRIVHP_ASSIGN_OR_RETURN(double q, r.Double());
        req.qs.push_back(q);
      }
      break;
    }
    case ServiceOp::kHeavy: {
      PRIVHP_ASSIGN_OR_RETURN(req.threshold, r.Double());
      break;
    }
    case ServiceOp::kExport:
      break;
    case ServiceOp::kIngest: {
      PRIVHP_ASSIGN_OR_RETURN(req.dim, r.U32());
      PRIVHP_ASSIGN_OR_RETURN(req.epsilon, r.Double());
      PRIVHP_ASSIGN_OR_RETURN(req.k, r.U64());
      PRIVHP_ASSIGN_OR_RETURN(req.n, r.U64());
      PRIVHP_ASSIGN_OR_RETURN(req.seed, r.U64());
      PRIVHP_ASSIGN_OR_RETURN(req.threads, r.U32());
      break;
    }
    default:
      break;
  }
  PRIVHP_RETURN_NOT_OK(r.ExpectEnd());
  return req;
}

std::string EncodeErrorResponse(const Status& status) {
  PRIVHP_DCHECK(!status.ok());
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(status.code()));
  w.PutString(status.message());
  return w.Take();
}

WireWriter BeginOkResponse() {
  WireWriter w;
  w.PutU8(0);
  return w;
}

Status ParseResponse(const std::string& frame, WireReader* payload) {
  WireReader r(frame);
  PRIVHP_ASSIGN_OR_RETURN(uint8_t code, r.U8());
  if (code != 0) {
    PRIVHP_ASSIGN_OR_RETURN(std::string message, r.String());
    return Status(static_cast<StatusCode>(code), std::move(message));
  }
  *payload = r;
  return Status::OK();
}

void EncodeStatsSnapshot(const obs::MetricsSnapshot& snapshot,
                         WireWriter* w) {
  w->PutU32(kStatsSnapshotVersion);
  w->PutU32(static_cast<uint32_t>(snapshot.counters.size()));
  for (const auto& c : snapshot.counters) {
    w->PutString(c.name);
    w->PutU64(c.value);
  }
  w->PutU32(static_cast<uint32_t>(snapshot.gauges.size()));
  for (const auto& g : snapshot.gauges) {
    w->PutString(g.name);
    w->PutU64(static_cast<uint64_t>(g.value));
  }
  w->PutU32(static_cast<uint32_t>(snapshot.histograms.size()));
  for (const auto& h : snapshot.histograms) {
    w->PutString(h.name);
    w->PutU64(h.hist.sum);
    w->PutU64(h.hist.max);
    uint32_t nonzero = 0;
    for (uint64_t b : h.hist.buckets) nonzero += b != 0;
    w->PutU32(nonzero);
    for (uint32_t i = 0; i < obs::kHistogramBuckets; ++i) {
      if (h.hist.buckets[i] == 0) continue;
      w->PutU32(i);
      w->PutU64(h.hist.buckets[i]);
    }
  }
}

Result<obs::MetricsSnapshot> DecodeStatsSnapshot(WireReader* payload) {
  PRIVHP_ASSIGN_OR_RETURN(const uint32_t version, payload->U32());
  if (version != kStatsSnapshotVersion) {
    return Status::InvalidArgument(
        "unsupported STATS snapshot version " + std::to_string(version) +
        " (this client speaks version " +
        std::to_string(kStatsSnapshotVersion) + ")");
  }
  obs::MetricsSnapshot snapshot;
  // A counter entry is at least a 4-byte name length + an 8-byte value.
  PRIVHP_ASSIGN_OR_RETURN(const uint32_t n_counters,
                          payload->BoundedCount(12));
  snapshot.counters.reserve(n_counters);
  for (uint32_t i = 0; i < n_counters; ++i) {
    obs::MetricsSnapshot::CounterValue c;
    PRIVHP_ASSIGN_OR_RETURN(c.name, payload->String());
    PRIVHP_ASSIGN_OR_RETURN(c.value, payload->U64());
    snapshot.counters.push_back(std::move(c));
  }
  PRIVHP_ASSIGN_OR_RETURN(const uint32_t n_gauges, payload->BoundedCount(12));
  snapshot.gauges.reserve(n_gauges);
  for (uint32_t i = 0; i < n_gauges; ++i) {
    obs::MetricsSnapshot::GaugeValue g;
    PRIVHP_ASSIGN_OR_RETURN(g.name, payload->String());
    PRIVHP_ASSIGN_OR_RETURN(const uint64_t raw, payload->U64());
    g.value = static_cast<int64_t>(raw);
    snapshot.gauges.push_back(std::move(g));
  }
  // A histogram entry is at least name length + sum + max + bucket count.
  PRIVHP_ASSIGN_OR_RETURN(const uint32_t n_hists, payload->BoundedCount(24));
  snapshot.histograms.reserve(n_hists);
  for (uint32_t i = 0; i < n_hists; ++i) {
    obs::MetricsSnapshot::HistogramValue h;
    PRIVHP_ASSIGN_OR_RETURN(h.name, payload->String());
    PRIVHP_ASSIGN_OR_RETURN(h.hist.sum, payload->U64());
    PRIVHP_ASSIGN_OR_RETURN(h.hist.max, payload->U64());
    // Sparse bucket entries: u32 index + u64 count each. The index lands
    // in a fixed array, so validate it against the scheme the version
    // byte promised — never index from an unchecked wire value.
    PRIVHP_ASSIGN_OR_RETURN(const uint32_t n_buckets,
                            payload->BoundedCount(12));
    for (uint32_t b = 0; b < n_buckets; ++b) {
      PRIVHP_ASSIGN_OR_RETURN(const uint32_t index, payload->U32());
      PRIVHP_ASSIGN_OR_RETURN(const uint64_t count, payload->U64());
      if (index >= obs::kHistogramBuckets) {
        return Status::IOError("STATS histogram bucket index " +
                               std::to_string(index) +
                               " outside the version-1 bucket array");
      }
      h.hist.buckets[index] += count;
    }
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

}  // namespace privhp
