#include "io/point_stream.h"

#include <algorithm>
#include <cerrno>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <iterator>
#include <limits>

#include "common/macros.h"
#include "domain/ipv4_domain.h"

namespace privhp {

namespace {

bool IsSkippable(const std::string& line) {
  for (char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;  // blank
}

}  // namespace

Status ParseCsvPoint(const std::string& line, int dimension, Point* out) {
  out->clear();
  out->reserve(dimension);
  const char* cursor = line.c_str();
  for (int c = 0; c < dimension; ++c) {
    char* end = nullptr;
    errno = 0;
    const double value = std::strtod(cursor, &end);
    if (end == cursor) {
      return Status::InvalidArgument("malformed coordinate " +
                                     std::to_string(c) + " in line '" +
                                     line + "'");
    }
    // ERANGE covers both overflow (result is +-HUGE_VAL) and underflow
    // (result rounds to a denormal or zero). Only overflow is malformed:
    // a tiny-but-representable coordinate like 1e-320 is valid input.
    if (errno == ERANGE && std::abs(value) == HUGE_VAL) {
      return Status::InvalidArgument("coordinate " + std::to_string(c) +
                                     " overflows double in line '" + line +
                                     "'");
    }
    out->push_back(value);
    cursor = end;
    while (*cursor == ' ' || *cursor == '\t') ++cursor;
    if (c + 1 < dimension) {
      if (*cursor != ',') {
        return Status::InvalidArgument("expected ',' after coordinate " +
                                       std::to_string(c) + " in line '" +
                                       line + "'");
      }
      ++cursor;
    }
  }
  // After the last coordinate: at most one bare trailing comma, then only
  // whitespace/CR to end of line. Anything after that comma is an extra
  // column — erroring (instead of silently dropping it) catches a file
  // read with the wrong --dim.
  while (*cursor == ' ' || *cursor == '\t' || *cursor == '\r') ++cursor;
  if (*cursor == ',') {
    ++cursor;
    while (*cursor == ' ' || *cursor == '\t' || *cursor == '\r') ++cursor;
    if (*cursor != '\0') {
      return Status::InvalidArgument(
          "line '" + line + "' has more than " + std::to_string(dimension) +
          " columns");
    }
  }
  if (*cursor != '\0') {
    return Status::InvalidArgument("trailing garbage in line '" + line +
                                   "'");
  }
  return Status::OK();
}

CsvPointReader::CsvPointReader(std::ifstream in, int dimension)
    : in_(std::move(in)), dimension_(dimension) {}

Result<CsvPointReader> CsvPointReader::Open(const std::string& path,
                                            int dimension) {
  if (dimension < 1) {
    return Status::InvalidArgument("dimension must be >= 1");
  }
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open: " + path);
  return CsvPointReader(std::move(in), dimension);
}

Result<bool> CsvPointReader::ReadLineInto(Point* out) {
  while (std::getline(in_, line_)) {
    ++line_number_;
    if (IsSkippable(line_)) continue;
    const Status parsed = ParseCsvPoint(line_, dimension_, out);
    if (!parsed.ok()) {
      return Status::InvalidArgument(parsed.message() + " (line " +
                                     std::to_string(line_number_) + ")");
    }
    return true;
  }
  if (in_.bad()) return Status::IOError("read failure");
  return false;
}

Result<bool> CsvPointReader::Next(Point* out) { return ReadLineInto(out); }

Result<size_t> CsvPointReader::NextBatch(size_t max_points,
                                         std::vector<Point>* out) {
  out->clear();
  while (out->size() < max_points) {
    out->emplace_back();
    PRIVHP_ASSIGN_OR_RETURN(bool more, ReadLineInto(&out->back()));
    if (!more) {
      out->pop_back();
      break;
    }
  }
  return out->size();
}

Result<size_t> CsvPointReader::NextBatch(size_t max_points,
                                         PointBatch* out) {
  out->Reset(dimension_);
  out->Reserve(max_points);
  Point scratch;
  size_t n = 0;
  while (n < max_points) {
    PRIVHP_ASSIGN_OR_RETURN(bool more, ReadLineInto(&scratch));
    if (!more) break;
    out->AppendPoint(scratch);
    ++n;
  }
  return n;
}

Result<std::vector<Point>> ReadPointsCsv(const std::string& path,
                                         int dimension) {
  PRIVHP_ASSIGN_OR_RETURN(CsvPointReader reader,
                          CsvPointReader::Open(path, dimension));
  std::vector<Point> points;
  std::vector<Point> batch;
  for (;;) {
    PRIVHP_ASSIGN_OR_RETURN(size_t n, reader.NextBatch(4096, &batch));
    if (n == 0) break;
    std::move(batch.begin(), batch.end(), std::back_inserter(points));
  }
  return points;
}

CsvPointWriter::CsvPointWriter(std::ofstream out) : out_(std::move(out)) {
  out_.precision(std::numeric_limits<double>::max_digits10);
}

Result<CsvPointWriter> CsvPointWriter::Open(const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  return CsvPointWriter(std::move(out));
}

Status CsvPointWriter::Add(const Point& x) {
  for (size_t c = 0; c < x.size(); ++c) {
    if (c) out_ << ",";
    out_ << x[c];
  }
  out_ << "\n";
  if (!out_.good()) return Status::IOError("write failure");
  ++num_written_;
  return Status::OK();
}

Status CsvPointWriter::AddAll(const PointBatch& batch) {
  const size_t n = batch.size();
  const int d = batch.dim();
  for (size_t i = 0; i < n; ++i) {
    const double* row = batch.row(i);
    for (int c = 0; c < d; ++c) {
      if (c) out_ << ",";
      out_ << row[c];
    }
    out_ << "\n";
    if (!out_.good()) return Status::IOError("write failure");
    ++num_written_;
  }
  return Status::OK();
}

Status CsvPointWriter::Close() {
  out_.flush();
  if (!out_.good()) return Status::IOError("write failure on close");
  out_.close();
  return Status::OK();
}

Status WritePointsCsv(const std::string& path,
                      const std::vector<Point>& points) {
  PRIVHP_ASSIGN_OR_RETURN(CsvPointWriter writer, CsvPointWriter::Open(path));
  PRIVHP_RETURN_NOT_OK(writer.AddAll(points));
  return writer.Close();
}

Result<std::vector<Point>> ReadIpv4TraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open: " + path);
  std::vector<Point> points;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (IsSkippable(line)) continue;
    // Trim trailing whitespace/CR.
    while (!line.empty() &&
           std::isspace(static_cast<unsigned char>(line.back()))) {
      line.pop_back();
    }
    auto address = Ipv4Domain::ParseAddress(line);
    if (!address.ok()) {
      return Status::InvalidArgument(address.status().message() +
                                     " (line " +
                                     std::to_string(line_number) + ")");
    }
    points.push_back(Ipv4Domain::FromAddress(*address));
  }
  return points;
}

}  // namespace privhp
