#include "io/frame_socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/macros.h"

namespace privhp {

namespace {

constexpr int kPollIntervalMs = 100;

Status ErrnoStatus(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

// Waits until `fd` is readable, polling `cancel` between timeouts.
Status WaitReadable(int fd, const CancelFn& cancel) {
  for (;;) {
    if (cancel && cancel()) return Status::FailedPrecondition("cancelled");
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, cancel ? kPollIntervalMs : -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll");
    }
    if (rc > 0) return Status::OK();
  }
}

Status SendAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send");
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

// Reads exactly `size` bytes. Returns false on EOF before the first byte;
// EOF after a partial read is an IOError (torn frame).
Result<bool> RecvAll(int fd, char* data, size_t size, const CancelFn& cancel) {
  size_t got = 0;
  while (got < size) {
    PRIVHP_RETURN_NOT_OK(WaitReadable(fd, cancel));
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return ErrnoStatus("recv");
    }
    if (n == 0) {
      if (got == 0) return false;
      return Status::IOError("connection closed mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return true;
}

Status SetNonBlocking(int fd, bool enable) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)");
  const int want = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) < 0) {
    return ErrnoStatus("fcntl(F_SETFL)");
  }
  return Status::OK();
}

Result<Socket> MakeTcpAddress(const std::string& host, uint16_t port,
                              struct sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  return Socket(fd);
}

Result<Socket> MakeUnixAddress(const std::string& path,
                               struct sockaddr_un* addr) {
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument("unix socket path empty or too long: " +
                                   path);
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  return Socket(fd);
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> ListenTcp(const std::string& host, uint16_t port,
                         uint16_t* bound_port) {
  struct sockaddr_in addr;
  PRIVHP_ASSIGN_OR_RETURN(Socket sock, MakeTcpAddress(host, port, &addr));
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return ErrnoStatus("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(sock.fd(), SOMAXCONN) < 0) return ErrnoStatus("listen");
  // Non-blocking listener: a pending connection can vanish between
  // poll() and accept() (async network error, linger-0 reset), and a
  // blocking accept() would then sleep past the cancel predicate.
  PRIVHP_RETURN_NOT_OK(SetNonBlocking(sock.fd(), true));
  if (bound_port != nullptr) {
    struct sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(sock.fd(), reinterpret_cast<struct sockaddr*>(&bound),
                      &len) < 0) {
      return ErrnoStatus("getsockname");
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return sock;
}

Result<Socket> ListenUnix(const std::string& path) {
  struct sockaddr_un addr;
  PRIVHP_ASSIGN_OR_RETURN(Socket sock, MakeUnixAddress(path, &addr));
  ::unlink(path.c_str());
  if (::bind(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return ErrnoStatus("bind " + path);
  }
  if (::listen(sock.fd(), SOMAXCONN) < 0) return ErrnoStatus("listen");
  PRIVHP_RETURN_NOT_OK(SetNonBlocking(sock.fd(), true));  // see ListenTcp
  return sock;
}

Result<Socket> ConnectTcp(const std::string& host, uint16_t port) {
  struct sockaddr_in addr;
  PRIVHP_ASSIGN_OR_RETURN(Socket sock, MakeTcpAddress(host, port, &addr));
  if (::connect(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    return ErrnoStatus("connect " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Result<Socket> ConnectUnix(const std::string& path) {
  struct sockaddr_un addr;
  PRIVHP_ASSIGN_OR_RETURN(Socket sock, MakeUnixAddress(path, &addr));
  if (::connect(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    return ErrnoStatus("connect " + path);
  }
  return sock;
}

Result<Socket> AcceptReady(const Socket& listener, bool* would_block) {
  *would_block = false;
  if (!listener.valid()) {
    return Status::InvalidArgument("accept on an invalid socket");
  }
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket conn(fd);
      // O_NONBLOCK inheritance across accept() is platform-defined; the
      // readiness loop needs it set.
      PRIVHP_RETURN_NOT_OK(SetNonBlocking(fd, true));
      return conn;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      *would_block = true;
      return Socket();
    }
    return ErrnoStatus("accept");
  }
}

Status SetSocketNonBlocking(const Socket& sock, bool enable) {
  if (!sock.valid()) {
    return Status::InvalidArgument("fcntl on an invalid socket");
  }
  return SetNonBlocking(sock.fd(), enable);
}

Result<Socket> Accept(const Socket& listener, const CancelFn& cancel) {
  if (!listener.valid()) {
    return Status::InvalidArgument("accept on an invalid socket");
  }
  for (;;) {
    PRIVHP_RETURN_NOT_OK(WaitReadable(listener.fd(), cancel));
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket conn(fd);
      // O_NONBLOCK inheritance across accept() is platform-defined;
      // frame I/O expects blocking connection sockets.
      PRIVHP_RETURN_NOT_OK(SetNonBlocking(fd, false));
      return conn;
    }
    // EAGAIN: the ready connection vanished between poll and accept —
    // back to the poll loop so the cancel predicate stays live.
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return ErrnoStatus("accept");
  }
}

Result<std::pair<Socket, Socket>> SocketPair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0) {
    return ErrnoStatus("socketpair");
  }
  return std::make_pair(Socket(fds[0]), Socket(fds[1]));
}

Status SendFrame(const Socket& sock, const std::string& payload) {
  if (!sock.valid()) {
    return Status::InvalidArgument("send on an invalid socket");
  }
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame exceeds " +
                                   std::to_string(kMaxFrameBytes) + " bytes");
  }
  const uint32_t size = static_cast<uint32_t>(payload.size());
  char header[4];
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<char>((size >> (8 * i)) & 0xff);
  }
  PRIVHP_RETURN_NOT_OK(SendAll(sock.fd(), header, sizeof(header)));
  return SendAll(sock.fd(), payload.data(), payload.size());
}

Result<bool> RecvFrame(const Socket& sock, std::string* payload,
                       const CancelFn& cancel) {
  if (!sock.valid()) {
    return Status::InvalidArgument("recv on an invalid socket");
  }
  char header[4];
  PRIVHP_ASSIGN_OR_RETURN(bool more,
                          RecvAll(sock.fd(), header, sizeof(header), cancel));
  if (!more) return false;
  uint32_t size = 0;
  for (int i = 0; i < 4; ++i) {
    size |= static_cast<uint32_t>(static_cast<uint8_t>(header[i])) << (8 * i);
  }
  if (size > kMaxFrameBytes) {
    return Status::IOError("oversized frame: " + std::to_string(size) +
                           " bytes");
  }
  payload->resize(size);
  if (size == 0) return true;
  PRIVHP_ASSIGN_OR_RETURN(bool body,
                          RecvAll(sock.fd(), &(*payload)[0], size, cancel));
  if (!body) return Status::IOError("connection closed mid-frame");
  return true;
}

// Poll() parses frames out of a read buffer refilled one recv at a
// time: a burst of small pipelined frames costs one syscall, not two
// per frame. Bodies whose remainder exceeds the buffer are received
// straight into frame_, skipping the extra copy.
Result<FrameReader::Event> FrameReader::Poll(const Socket& sock) {
  constexpr size_t kReadBufBytes = 64 * 1024;
  if (!sock.valid()) {
    return Status::InvalidArgument("recv on an invalid socket");
  }
  if (buf_.size() != kReadBufBytes) buf_.resize(kReadBufBytes);
  for (;;) {
    if (!in_body_ && len_ - pos_ >= 4) {
      uint32_t size = 0;
      for (int i = 0; i < 4; ++i) {
        size |= static_cast<uint32_t>(static_cast<uint8_t>(buf_[pos_ + i]))
                << (8 * i);
      }
      if (size > kMaxFrameBytes) {
        return Status::IOError("oversized frame: " + std::to_string(size) +
                               " bytes");
      }
      pos_ += 4;
      frame_.clear();
      frame_.resize(size);
      body_have_ = 0;
      in_body_ = true;
    }
    if (in_body_) {
      const size_t take = std::min(len_ - pos_, frame_.size() - body_have_);
      if (take > 0) {
        std::memcpy(&frame_[body_have_], buf_.data() + pos_, take);
        pos_ += take;
        body_have_ += take;
      }
      if (body_have_ == frame_.size()) {
        in_body_ = false;
        return Event::kFrame;
      }
      if (frame_.size() - body_have_ >= kReadBufBytes) {
        // Large body and the buffer is drained (take emptied it):
        // receive the rest directly into the frame.
        const ssize_t n = ::recv(sock.fd(), &frame_[body_have_],
                                 frame_.size() - body_have_, 0);
        if (n < 0) {
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) return Event::kNeedMore;
          return ErrnoStatus("recv");
        }
        if (n == 0) return Status::IOError("connection closed mid-frame");
        body_have_ += static_cast<size_t>(n);
        bytes_received_ += static_cast<uint64_t>(n);
        continue;
      }
    }
    // Refill: compact the consumed prefix, then one recv into the tail.
    if (pos_ > 0) {
      if (len_ > pos_) std::memmove(&buf_[0], buf_.data() + pos_, len_ - pos_);
      len_ -= pos_;
      pos_ = 0;
    }
    const ssize_t n = ::recv(sock.fd(), &buf_[len_], kReadBufBytes - len_, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return Event::kNeedMore;
      return ErrnoStatus("recv");
    }
    if (n == 0) {
      // EOF: clean only at a frame boundary with nothing buffered.
      if (in_body_ || len_ > 0) {
        return Status::IOError("connection closed mid-frame");
      }
      return Event::kEof;
    }
    len_ += static_cast<size_t>(n);
    bytes_received_ += static_cast<uint64_t>(n);
  }
}

Status FrameWriter::Enqueue(std::string payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame exceeds " +
                                   std::to_string(kMaxFrameBytes) + " bytes");
  }
  const uint32_t size = static_cast<uint32_t>(payload.size());
  char header[4];
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<char>((size >> (8 * i)) & 0xff);
  }
  payload.insert(0, header, sizeof(header));
  pending_bytes_ += payload.size();
  queue_.push_back(std::move(payload));
  return Status::OK();
}

Result<bool> FrameWriter::Pump(const Socket& sock) {
  if (!sock.valid()) {
    return Status::InvalidArgument("send on an invalid socket");
  }
  while (!queue_.empty()) {
    // Gather as many queued frames as fit into one vectored send:
    // pipelined responses are tiny, and one sendmsg per flush instead of
    // one send per frame is most of the reactor's write-side cost.
    struct iovec iov[64];
    int iov_count = 0;
    size_t batched = 0;
    for (const std::string& frame : queue_) {
      if (iov_count == 64) break;
      const size_t offset = iov_count == 0 ? front_offset_ : 0;
      iov[iov_count].iov_base =
          const_cast<char*>(frame.data()) + offset;
      iov[iov_count].iov_len = frame.size() - offset;
      batched += iov[iov_count].iov_len;
      ++iov_count;
    }
    struct msghdr msg;
    std::memset(&msg, 0, sizeof(msg));
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(iov_count);
    const ssize_t n = ::sendmsg(sock.fd(), &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
      return ErrnoStatus("sendmsg");
    }
    pending_bytes_ -= static_cast<size_t>(n);
    bytes_sent_ += static_cast<uint64_t>(n);
    size_t sent = static_cast<size_t>(n);
    while (sent > 0) {
      const size_t front_left = queue_.front().size() - front_offset_;
      if (sent >= front_left) {
        sent -= front_left;
        queue_.pop_front();
        front_offset_ = 0;
      } else {
        front_offset_ += sent;
        sent = 0;
      }
    }
    if (static_cast<size_t>(n) < batched) return false;  // kernel buffer full
  }
  return true;
}

}  // namespace privhp
