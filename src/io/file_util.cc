#include "io/file_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

namespace privhp {

namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

AtomicFileWriter::AtomicFileWriter(int fd, std::string temp_path,
                                   std::string final_path)
    : fd_(fd),
      temp_path_(std::move(temp_path)),
      final_path_(std::move(final_path)) {}

Result<AtomicFileWriter> AtomicFileWriter::Create(
    const std::string& final_path) {
  if (final_path.empty()) {
    return Status::InvalidArgument("target path must not be empty");
  }
  // Distinct temp names per (process, call) so concurrent writers to the
  // same target never share a staging file; O_EXCL catches leftovers
  // from a previous crashed process.
  static std::atomic<uint64_t> counter{0};
  for (int attempt = 0; attempt < 16; ++attempt) {
    const std::string temp = final_path + ".tmp." +
                             std::to_string(::getpid()) + "." +
                             std::to_string(counter.fetch_add(1));
    const int fd =
        ::open(temp.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
    if (fd >= 0) return AtomicFileWriter(fd, temp, final_path);
    if (errno != EEXIST) {
      return Status::IOError(ErrnoMessage("cannot create temp file", temp));
    }
  }
  return Status::IOError("cannot create a unique temp file next to " +
                         final_path);
}

AtomicFileWriter::AtomicFileWriter(AtomicFileWriter&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      size_(std::exchange(other.size_, 0)),
      temp_path_(std::move(other.temp_path_)),
      final_path_(std::move(other.final_path_)) {
  other.temp_path_.clear();
}

AtomicFileWriter& AtomicFileWriter::operator=(
    AtomicFileWriter&& other) noexcept {
  if (this != &other) {
    Abandon();
    fd_ = std::exchange(other.fd_, -1);
    size_ = std::exchange(other.size_, 0);
    temp_path_ = std::move(other.temp_path_);
    final_path_ = std::move(other.final_path_);
    other.temp_path_.clear();
  }
  return *this;
}

AtomicFileWriter::~AtomicFileWriter() { Abandon(); }

void AtomicFileWriter::Abandon() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!temp_path_.empty()) {
    ::unlink(temp_path_.c_str());
    temp_path_.clear();
  }
}

Status AtomicFileWriter::Append(const void* data, size_t n) {
  if (fd_ < 0) return Status::FailedPrecondition("writer is closed");
  const char* p = static_cast<const char*>(data);
  size_t written = 0;
  while (written < n) {
    const ssize_t w = ::write(fd_, p + written, n - written);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("write failed on", temp_path_));
    }
    written += static_cast<size_t>(w);
  }
  size_ += n;
  return Status::OK();
}

Status AtomicFileWriter::WriteAt(uint64_t offset, const void* data,
                                 size_t n) {
  if (fd_ < 0) return Status::FailedPrecondition("writer is closed");
  const char* p = static_cast<const char*>(data);
  size_t written = 0;
  while (written < n) {
    const ssize_t w = ::pwrite(fd_, p + written, n - written,
                               static_cast<off_t>(offset + written));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("pwrite failed on", temp_path_));
    }
    written += static_cast<size_t>(w);
  }
  if (offset + n > size_) size_ = offset + n;
  return Status::OK();
}

Status AtomicFileWriter::Commit() {
  if (fd_ < 0) return Status::FailedPrecondition("writer is closed");
  if (::fsync(fd_) != 0) {
    return Status::IOError(ErrnoMessage("fsync failed on", temp_path_));
  }
  if (::close(fd_) != 0) {
    fd_ = -1;
    return Status::IOError(ErrnoMessage("close failed on", temp_path_));
  }
  fd_ = -1;
  if (::rename(temp_path_.c_str(), final_path_.c_str()) != 0) {
    return Status::IOError(ErrnoMessage(
        "rename failed for", temp_path_ + " -> " + final_path_));
  }
  temp_path_.clear();
  // Persist the rename itself. Best-effort: some filesystems refuse
  // directory fsync, and the data is already durable in the file.
  const int dir_fd =
      ::open(DirName(final_path_).c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path,
                       const std::string& contents) {
  Result<AtomicFileWriter> writer = AtomicFileWriter::Create(path);
  if (!writer.ok()) return writer.status();
  Status appended = writer->Append(contents.data(), contents.size());
  if (!appended.ok()) return appended;
  return writer->Commit();
}

}  // namespace privhp
