// Crash-safe file replacement shared by the tree serializer and the
// paged artifact packer.
//
// Overwriting an artifact in place means a crash mid-write leaves a
// truncated file behind the original name. AtomicFileWriter stages all
// bytes in a temp file in the target's directory, fsyncs it, and renames
// it over the target only on Commit() — readers observe either the old
// bytes or the complete new bytes, never a prefix.

#ifndef PRIVHP_IO_FILE_UTIL_H_
#define PRIVHP_IO_FILE_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace privhp {

/// \brief Write-then-rename staging for one target file.
///
/// Bytes go to `<target>.tmp.<pid>.<counter>` (same directory, so the
/// rename cannot cross filesystems). Commit() fsyncs, renames over the
/// target and fsyncs the directory; destruction before Commit() unlinks
/// the temp file so failed writes leave nothing behind.
class AtomicFileWriter {
 public:
  /// \brief Opens a fresh temp file next to \p final_path.
  static Result<AtomicFileWriter> Create(const std::string& final_path);

  AtomicFileWriter(AtomicFileWriter&& other) noexcept;
  AtomicFileWriter& operator=(AtomicFileWriter&& other) noexcept;
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// \brief Unlinks the temp file if Commit() never succeeded.
  ~AtomicFileWriter();

  /// \brief Appends \p n bytes at the current end of the temp file.
  Status Append(const void* data, size_t n);

  /// \brief Overwrites \p n bytes at \p offset — for patching a header
  /// whose contents (checksums, counts) are only known after the body
  /// has been written.
  Status WriteAt(uint64_t offset, const void* data, size_t n);

  /// \brief High-water mark of bytes written.
  uint64_t size() const { return size_; }

  /// \brief Flushes and fsyncs the temp file, renames it over the
  /// target, and fsyncs the directory. The writer is inert afterwards.
  Status Commit();

 private:
  AtomicFileWriter(int fd, std::string temp_path, std::string final_path);

  void Abandon();

  int fd_ = -1;
  uint64_t size_ = 0;
  std::string temp_path_;
  std::string final_path_;
};

/// \brief Writes \p contents to \p path with the atomic temp + fsync +
/// rename discipline, byte-exact (no newline translation).
Status WriteFileAtomic(const std::string& path, const std::string& contents);

}  // namespace privhp

#endif  // PRIVHP_IO_FILE_UTIL_H_
