// PointSource / PointSink over a framed socket: the plumbing that lets
// PrivHPBuilder::BuildParallel sit behind a network ingestion front end,
// and lets a server stream synthetic samples back without materializing
// them (bounded memory on both ends of the wire).
//
// Point frames (payload layout after the u32 frame length):
//   batch: [kPointBatchTag:u8][count:u32][dim:u32][count*dim doubles]
//   end:   [kPointStreamEndTag:u8][total:u64]
// A point stream is any number of batch frames terminated by one end
// frame whose `total` must equal the points delivered — a truncation
// check, since TCP gives no message boundaries across connection loss.
//
// The service protocol embeds these exact frames inside INGEST and
// SAMPLE exchanges, so CsvPointReader -> SocketPointSink on a client and
// SocketPointSource -> PrivHPShard on a server compose with no adapter.

#ifndef PRIVHP_IO_SOCKET_POINT_STREAM_H_
#define PRIVHP_IO_SOCKET_POINT_STREAM_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "domain/domain.h"
#include "io/frame_socket.h"
#include "io/point_sink.h"

namespace privhp {

/// \brief Pluggable frame transports for the point streams. The sink
/// hands each encoded frame payload to FrameSendFn; the source pulls the
/// next frame payload from FrameRecvFn (true = frame delivered, false =
/// clean EOF, FailedPrecondition = cancelled — the same contract as
/// RecvFrame). The defaults wrap a blocking socket; the event-loop
/// server plugs in its connection outbox and ingest channel instead,
/// keeping the wire bytes identical across transports.
using FrameSendFn = std::function<Status(std::string payload)>;
using FrameRecvFn = std::function<Result<bool>(std::string* payload)>;

/// \brief First payload byte of a point-batch frame.
inline constexpr uint8_t kPointBatchTag = 0x20;
/// \brief First payload byte of the end-of-stream frame.
inline constexpr uint8_t kPointStreamEndTag = 0x21;

/// \brief Encodes points[begin..end) as one batch-frame payload.
std::string EncodePointBatch(const std::vector<Point>& points, size_t begin,
                             size_t end);
/// \brief Encodes \p count row-major points of \p dim coordinates as one
/// batch-frame payload. The arena layout matches the wire layout, so on
/// a little-endian host the coordinate block is one append.
std::string EncodePointBatch(const double* flat, uint32_t dim, size_t count);
/// \brief Encodes a whole columnar batch as one batch-frame payload.
std::string EncodePointBatch(const PointBatch& batch);
/// \brief Encodes the end-of-stream payload carrying the stream total.
std::string EncodePointStreamEnd(uint64_t total_points);

/// \brief Decodes a batch-frame payload, appending to \p out. Every point
/// must have \p expected_dim coordinates when expected_dim > 0.
Status DecodePointBatch(const std::string& payload, int expected_dim,
                        std::deque<Point>* out);

/// \brief Vector overload: the batched ingest path decodes whole frames
/// straight into the batch the shard consumes, with no deque staging.
Status DecodePointBatch(const std::string& payload, int expected_dim,
                        std::vector<Point>* out);

/// \brief Columnar overload: the coordinate block is bounds-checked
/// against the payload, then copied straight into the arena (one memcpy
/// on little-endian hosts) — no per-point allocation on the receive
/// path. Appends to \p out; a non-empty \p out whose dimension differs
/// from the frame's is an error.
Status DecodePointBatch(const std::string& payload, int expected_dim,
                        PointBatch* out);

/// \brief PointSink that streams points over a socket in batch frames.
///
/// Buffers up to \p batch_size points (so the wire sees large frames, not
/// per-point writes) and flushes automatically; FinishStream() flushes
/// the tail and sends the end frame. The socket is not owned.
class SocketPointSink : public PointSink {
 public:
  explicit SocketPointSink(const Socket* sock, size_t batch_size = 1024);

  /// \brief Custom-transport form: every encoded frame payload goes to
  /// \p send_frame instead of a socket (e.g. the event-loop server's
  /// per-connection output queue).
  explicit SocketPointSink(FrameSendFn send_frame, size_t batch_size = 1024);

  // The buffer is columnar, so the move overload gains nothing over the
  // copy; the using-declaration keeps both Add signatures visible.
  using PointSink::Add;
  Status Add(const Point& x) override;
  /// \brief Bulk append: one buffer extension + flushes at frame
  /// boundaries, no per-point virtual dispatch (the batched Drain path).
  Status AddAll(const std::vector<Point>& points) override;
  /// \brief Columnar append: arena rows copy into the wire buffer (also
  /// an arena) in frame-sized slices — the SAMPLE hot path
  /// (CompiledSampler::GenerateTo) lands here with zero per-point work.
  Status AddAll(const PointBatch& batch) override;
  uint64_t num_processed() const override { return num_sent_; }

  /// \brief Wire payload bytes flushed so far (batch + end frames) —
  /// what the server's per-op bytes-out histogram records for SAMPLE.
  uint64_t bytes_sent() const { return bytes_sent_; }

  /// \brief Sends any buffered points now.
  Status Flush();

  /// \brief Flushes and sends the end frame; no Add() afterwards.
  Status FinishStream();

 private:
  const Socket* sock_;
  FrameSendFn send_fn_;
  size_t batch_size_;
  // Pending points, columnar: Flush() encodes the arena as one frame
  // payload (the arena layout IS the wire layout). Dimension is set by
  // the first point and must stay fixed for the stream's lifetime.
  PointBatch buffer_;
  uint64_t num_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  bool finished_ = false;
};

/// \brief PointSource that reads a point stream from a socket.
///
/// Next() yields points one at a time out of the received batch frames
/// and returns false once the end frame arrives (after verifying the
/// stream total). Any non-point frame is an error.
class SocketPointSource : public PointSource {
 public:
  /// \param expected_dim When > 0, every received point must have this
  /// many coordinates.
  /// \param cancel Polled while blocked on the socket (see frame_socket);
  /// lets a server abandon a stalled peer on shutdown.
  /// \param idle_timeout_seconds When > 0, waiting longer than this for
  /// the *next* frame cancels the stream — bounds how long a stalled
  /// peer can hold the reader (a steadily streaming peer never hits it).
  explicit SocketPointSource(const Socket* sock, int expected_dim = 0,
                             CancelFn cancel = {},
                             int idle_timeout_seconds = 0);

  /// \brief Custom-transport form: frames come from \p recv_frame (which
  /// owns its own blocking/timeout/cancel policy — a FailedPrecondition
  /// from it marks the source cancelled, exactly like the socket form).
  explicit SocketPointSource(FrameRecvFn recv_frame, int expected_dim = 0);

  Result<bool> Next(Point* out) override;

  /// \brief Hands over whole decoded batch frames: when the staging
  /// buffer is empty, the next frame is decoded straight into \p out
  /// (so a full frame may exceed \p max_points — the contract allows
  /// it), which lets the service INGEST path feed each received frame
  /// into PrivHPShard::AddBatch without per-point staging.
  Result<size_t> NextBatch(size_t max_points,
                           std::vector<Point>* out) override;

  /// \brief Columnar form: frames decode straight into the arena (one
  /// bounds-checked copy per frame), so the server INGEST path goes
  /// wire -> arena -> PrivHPShard::AddBatch with no per-point staging.
  Result<size_t> NextBatch(size_t max_points, PointBatch* out) override;

  /// \brief Reads and discards frames until the end frame (or EOF/error):
  /// lets a server that failed mid-ingest keep the connection in protocol
  /// sync so it can still deliver the error response.
  Status SkipToEnd();

  /// \brief Points yielded so far.
  uint64_t num_received() const { return num_received_; }

  /// \brief Batch frames received so far (the ingest pipeline's batch
  /// counter; the end frame is not counted).
  uint64_t num_batches() const { return num_batches_; }

  /// \brief Wire payload bytes received so far (batch + end frames) —
  /// what the server's per-op bytes-in histogram records for INGEST.
  uint64_t bytes_received() const { return bytes_received_; }

  /// \brief True once the end frame has been consumed.
  bool finished() const { return finished_; }

  /// \brief True if a read was aborted by the cancel predicate or the
  /// idle timeout — lets callers tell a cancelled stream (no live peer
  /// to resync with) from an ordinary decode error.
  bool cancelled() const { return cancelled_; }

 private:
  Result<bool> FillBuffer();
  /// Receives the next frame into frame_, applying the idle timeout.
  Result<bool> RecvNext();
  /// Receives and classifies the next frame — the one protocol step
  /// Next() and NextBatch() share: true means frame_ holds a point
  /// batch to decode, false means the stream ended cleanly (end frame
  /// verified and consumed).
  Result<bool> RecvBatchFrame();
  /// Verifies the end frame sitting in frame_ and marks the stream done.
  Status ConsumeEndFrame();

  const Socket* sock_;
  FrameRecvFn recv_fn_;
  int expected_dim_;
  CancelFn cancel_;
  int idle_timeout_seconds_;
  std::deque<Point> buffer_;
  std::string frame_;
  uint64_t num_received_ = 0;
  uint64_t num_batches_ = 0;
  uint64_t bytes_received_ = 0;
  bool finished_ = false;
  bool cancelled_ = false;
};

}  // namespace privhp

#endif  // PRIVHP_IO_SOCKET_POINT_STREAM_H_
