#include "io/point_sink.h"

#include <utility>

#include "common/macros.h"

namespace privhp {

Status PointSink::AddAll(const std::vector<Point>& points) {
  for (const Point& x : points) PRIVHP_RETURN_NOT_OK(Add(x));
  return Status::OK();
}

Status PointSink::AddAll(const PointBatch& batch) {
  // One scratch point reused across rows; semantics match Add-per-point
  // exactly (including stopping at the first rejected point).
  Point x;
  const size_t n = batch.size();
  for (size_t i = 0; i < n; ++i) {
    const double* row = batch.row(i);
    x.assign(row, row + batch.dim());
    PRIVHP_RETURN_NOT_OK(Add(x));
  }
  return Status::OK();
}

Result<size_t> PointSource::NextBatch(size_t max_points,
                                      std::vector<Point>* out) {
  out->clear();
  Point x;
  while (out->size() < max_points) {
    PRIVHP_ASSIGN_OR_RETURN(bool more, Next(&x));
    if (!more) break;
    out->push_back(std::move(x));
  }
  return out->size();
}

Result<size_t> PointSource::NextBatch(size_t max_points, PointBatch* out) {
  out->Clear();
  Point x;
  size_t n = 0;
  while (n < max_points) {
    PRIVHP_ASSIGN_OR_RETURN(bool more, Next(&x));
    if (!more) break;
    if (x.empty()) {
      return Status::InvalidArgument(
          "point batch cannot hold zero-coordinate points");
    }
    if (out->dim() != static_cast<int>(x.size())) {
      if (!out->empty()) {
        return Status::InvalidArgument(
            "mixed point dimensions in one batch");
      }
      out->Reset(static_cast<int>(x.size()));
    }
    out->AppendPoint(x);
    ++n;
  }
  return n;
}

Result<bool> VectorPointSource::Next(Point* out) {
  if (points_ == nullptr) {
    return Status::InvalidArgument("vector point source has no backing data");
  }
  if (next_ >= points_->size()) return false;
  *out = (*points_)[next_++];
  return true;
}

Status CollectingSink::Add(const Point& x) {
  if (domain_ != nullptr) PRIVHP_RETURN_NOT_OK(domain_->ValidatePoint(x));
  points_.push_back(x);
  return Status::OK();
}

Status CollectingSink::Add(Point&& x) {
  if (domain_ != nullptr) PRIVHP_RETURN_NOT_OK(domain_->ValidatePoint(x));
  points_.push_back(std::move(x));
  return Status::OK();
}

Status CollectingSink::AddAll(const PointBatch& batch) {
  if (domain_ != nullptr) {
    // Per-row validation preserves Add()'s stop-at-first-failure
    // semantics (rows before the bad one are kept).
    const size_t n = batch.size();
    points_.reserve(points_.size() + n);
    for (size_t i = 0; i < n; ++i) {
      Point x = batch.At(i);
      PRIVHP_RETURN_NOT_OK(domain_->ValidatePoint(x));
      points_.push_back(std::move(x));
    }
    return Status::OK();
  }
  batch.CopyTo(&points_);
  return Status::OK();
}

Status Drain(PointSource* source, PointSink* sink) {
  if (source == nullptr || sink == nullptr) {
    return Status::InvalidArgument("Drain requires a source and a sink");
  }
  // Pump columnar batches, not points: batching sinks (shards, builders,
  // socket sinks) consume the arena directly and framed sources decode
  // whole frames into it; memory stays bounded by the batch size either
  // way.
  PointBatch batch;
  for (;;) {
    PRIVHP_ASSIGN_OR_RETURN(size_t n, source->NextBatch(kDrainBatchSize,
                                                        &batch));
    if (n == 0) return Status::OK();
    PRIVHP_RETURN_NOT_OK(sink->AddAll(batch));
  }
}

}  // namespace privhp
