#include "io/point_sink.h"

#include <utility>

#include "common/macros.h"

namespace privhp {

Status PointSink::AddAll(const std::vector<Point>& points) {
  for (const Point& x : points) PRIVHP_RETURN_NOT_OK(Add(x));
  return Status::OK();
}

Result<size_t> PointSource::NextBatch(size_t max_points,
                                      std::vector<Point>* out) {
  out->clear();
  Point x;
  while (out->size() < max_points) {
    PRIVHP_ASSIGN_OR_RETURN(bool more, Next(&x));
    if (!more) break;
    out->push_back(std::move(x));
  }
  return out->size();
}

Result<bool> VectorPointSource::Next(Point* out) {
  if (points_ == nullptr) {
    return Status::InvalidArgument("vector point source has no backing data");
  }
  if (next_ >= points_->size()) return false;
  *out = (*points_)[next_++];
  return true;
}

Status CollectingSink::Add(const Point& x) {
  if (domain_ != nullptr) PRIVHP_RETURN_NOT_OK(domain_->ValidatePoint(x));
  points_.push_back(x);
  return Status::OK();
}

Status CollectingSink::Add(Point&& x) {
  if (domain_ != nullptr) PRIVHP_RETURN_NOT_OK(domain_->ValidatePoint(x));
  points_.push_back(std::move(x));
  return Status::OK();
}

Status Drain(PointSource* source, PointSink* sink) {
  if (source == nullptr || sink == nullptr) {
    return Status::InvalidArgument("Drain requires a source and a sink");
  }
  // Pump batches, not points: batching sinks (shards, builders) get the
  // vectorized AddAll path and framed sources hand over whole decoded
  // frames; memory stays bounded by the batch size either way.
  std::vector<Point> batch;
  for (;;) {
    PRIVHP_ASSIGN_OR_RETURN(size_t n, source->NextBatch(kDrainBatchSize,
                                                        &batch));
    if (n == 0) return Status::OK();
    PRIVHP_RETURN_NOT_OK(sink->AddAll(batch));
  }
}

}  // namespace privhp
