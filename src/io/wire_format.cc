#include "io/wire_format.h"

#include <cstring>

#include "common/macros.h"

namespace privhp {

void WireWriter::PutU32(uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(b, 4);
}

void WireWriter::PutU64(uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(b, 8);
}

void WireWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

namespace {

// The wire carries doubles as little-endian u64 bit patterns, which on a
// little-endian host is exactly the in-memory layout of a double array.
constexpr bool kHostIsLittleEndian =
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    true;
#else
    false;
#endif

}  // namespace

void WireWriter::PutDoubleArray(const double* v, size_t n) {
  if (kHostIsLittleEndian) {
    buf_.append(reinterpret_cast<const char*>(v), n * sizeof(double));
    return;
  }
  for (size_t i = 0; i < n; ++i) PutDouble(v[i]);
}

void WireWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

void WireWriter::PutBytes(const void* data, size_t size) {
  buf_.append(static_cast<const char*>(data), size);
}

Status WireReader::Need(size_t n) const {
  if (remaining_ < n) {
    return Status::IOError("truncated frame: need " + std::to_string(n) +
                           " bytes, have " + std::to_string(remaining_));
  }
  return Status::OK();
}

Result<uint8_t> WireReader::U8() {
  PRIVHP_RETURN_NOT_OK(Need(1));
  const uint8_t v = static_cast<uint8_t>(*p_);
  ++p_;
  --remaining_;
  return v;
}

Result<uint32_t> WireReader::U32() {
  PRIVHP_RETURN_NOT_OK(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p_[i])) << (8 * i);
  }
  p_ += 4;
  remaining_ -= 4;
  return v;
}

Result<uint64_t> WireReader::U64() {
  PRIVHP_RETURN_NOT_OK(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p_[i])) << (8 * i);
  }
  p_ += 8;
  remaining_ -= 8;
  return v;
}

Result<double> WireReader::Double() {
  PRIVHP_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Status WireReader::ReadDoubles(double* out, size_t n) {
  // Check n * 8 without overflow: n beyond remaining_ / 8 cannot fit.
  if (n > remaining_ / sizeof(double)) {
    return Status::IOError("truncated frame: need " +
                           std::to_string(n * sizeof(double)) +
                           " bytes, have " + std::to_string(remaining_));
  }
  if (kHostIsLittleEndian) {
    std::memcpy(out, p_, n * sizeof(double));
    p_ += n * sizeof(double);
    remaining_ -= n * sizeof(double);
    return Status::OK();
  }
  for (size_t i = 0; i < n; ++i) {
    PRIVHP_ASSIGN_OR_RETURN(out[i], Double());
  }
  return Status::OK();
}

Result<std::string> WireReader::String() {
  PRIVHP_ASSIGN_OR_RETURN(uint32_t size, U32());
  PRIVHP_RETURN_NOT_OK(Need(size));
  std::string s(p_, size);
  p_ += size;
  remaining_ -= size;
  return s;
}

Result<uint32_t> WireReader::BoundedCount(size_t elem_bytes) {
  PRIVHP_DCHECK(elem_bytes > 0);
  PRIVHP_ASSIGN_OR_RETURN(uint32_t count, U32());
  if (count > remaining_ / elem_bytes) {
    return Status::IOError("declared count " + std::to_string(count) +
                           " exceeds remaining payload of " +
                           std::to_string(remaining_) + " bytes");
  }
  return count;
}

Status WireReader::ExpectEnd() const {
  if (remaining_ != 0) {
    return Status::IOError("frame has " + std::to_string(remaining_) +
                           " trailing bytes");
  }
  return Status::OK();
}

}  // namespace privhp
