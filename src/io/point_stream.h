// Reading and writing point streams.
//
// Deployments feed PrivHP from files or pipes; this module provides a
// streaming CSV reader (points never need to be materialized — the whole
// point of a bounded-memory builder), batch helpers, and an IPv4
// dotted-quad trace reader for the networking examples.
//
// CSV dialect: one point per line, coordinates separated by commas;
// blank lines and lines starting with '#' are skipped.

#ifndef PRIVHP_IO_POINT_STREAM_H_
#define PRIVHP_IO_POINT_STREAM_H_

#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "domain/domain.h"
#include "io/point_sink.h"

namespace privhp {

/// \brief Streaming CSV point reader (a PointSource: feed it to any
/// PointSink with Drain, or to PrivHPBuilder::BuildParallel).
class CsvPointReader : public PointSource {
 public:
  /// \brief Opens \p path expecting \p dimension coordinates per line.
  static Result<CsvPointReader> Open(const std::string& path, int dimension);

  /// \brief Reads the next point into \p out. Returns false at EOF.
  /// Malformed lines produce an error Status carrying the line number.
  Result<bool> Next(Point* out) override;

  /// \brief Parses up to \p max_points lines straight into \p out — one
  /// stream read per line but no per-point virtual dispatch or staging
  /// Point, which is what the batched ingest path (Drain -> AddBatch)
  /// wants to see.
  Result<size_t> NextBatch(size_t max_points,
                           std::vector<Point>* out) override;

  /// \brief Columnar form: lines parse through one reused scratch point
  /// into the arena, so a file -> shard pipeline allocates nothing per
  /// point once the scratch capacities warm up.
  Result<size_t> NextBatch(size_t max_points, PointBatch* out) override;

  /// \brief Lines consumed so far (including skipped ones).
  size_t line_number() const { return line_number_; }

 private:
  CsvPointReader(std::ifstream in, int dimension);

  /// Reads the next non-skippable line and parses it into \p out; the
  /// shared primitive behind Next and NextBatch, so the scalar and
  /// batched read paths cannot diverge.
  Result<bool> ReadLineInto(Point* out);

  std::ifstream in_;
  int dimension_;
  std::string line_;  // getline scratch
  size_t line_number_ = 0;
};

/// \brief Reads an entire CSV file of points.
Result<std::vector<Point>> ReadPointsCsv(const std::string& path,
                                         int dimension);

/// \brief Streaming CSV point writer (a PointSink): points are written as
/// they arrive, so producing an m-point synthetic dataset needs O(1)
/// memory — the serve side of the pipeline stays bounded like the build
/// side. Byte-compatible with WritePointsCsv.
class CsvPointWriter : public PointSink {
 public:
  static Result<CsvPointWriter> Open(const std::string& path);

  // The writer only reads coordinates, so the inherited move overload
  // (which forwards here) is already optimal; the using-declaration
  // keeps both Add signatures visible on the concrete type.
  using PointSink::Add;
  Status Add(const Point& x) override;
  /// \brief Writes arena rows without staging a Point per row.
  Status AddAll(const PointBatch& batch) override;
  using PointSink::AddAll;
  uint64_t num_processed() const override { return num_written_; }

  /// \brief Flushes and reports any deferred stream error.
  Status Close();

 private:
  explicit CsvPointWriter(std::ofstream out);

  std::ofstream out_;
  uint64_t num_written_ = 0;
};

/// \brief Writes points as CSV (full precision).
Status WritePointsCsv(const std::string& path,
                      const std::vector<Point>& points);

/// \brief Reads one dotted-quad IPv4 address per line into
/// Ipv4Domain-normalized points ('#' comments and blanks skipped).
Result<std::vector<Point>> ReadIpv4TraceFile(const std::string& path);

/// \brief Parses one CSV line into \p out (used by the reader; exposed
/// for tests and other line-oriented sources).
Status ParseCsvPoint(const std::string& line, int dimension, Point* out);

}  // namespace privhp

#endif  // PRIVHP_IO_POINT_STREAM_H_
