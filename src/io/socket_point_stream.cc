#include "io/socket_point_stream.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/macros.h"
#include "io/wire_format.h"

namespace privhp {

std::string EncodePointBatch(const std::vector<Point>& points, size_t begin,
                             size_t end) {
  PRIVHP_DCHECK(begin <= end && end <= points.size());
  const uint32_t dim =
      begin < end ? static_cast<uint32_t>(points[begin].size()) : 0;
  WireWriter w;
  w.PutU8(kPointBatchTag);
  w.PutU32(static_cast<uint32_t>(end - begin));
  w.PutU32(dim);
  for (size_t i = begin; i < end; ++i) {
    PRIVHP_DCHECK(points[i].size() == dim);
    w.PutDoubleArray(points[i].data(), points[i].size());
  }
  return w.Take();
}

std::string EncodePointBatch(const double* flat, uint32_t dim,
                             size_t count) {
  WireWriter w;
  w.PutU8(kPointBatchTag);
  w.PutU32(static_cast<uint32_t>(count));
  w.PutU32(count > 0 ? dim : 0);
  w.PutDoubleArray(flat, count * dim);
  return w.Take();
}

std::string EncodePointBatch(const PointBatch& batch) {
  return EncodePointBatch(batch.data(),
                          static_cast<uint32_t>(batch.dim()), batch.size());
}

std::string EncodePointStreamEnd(uint64_t total_points) {
  WireWriter w;
  w.PutU8(kPointStreamEndTag);
  w.PutU64(total_points);
  return w.Take();
}

namespace {

// Shared header parse + bounds guard for every batch-frame decoder: on
// OK, the reader sits at the coordinate block and count*dim doubles are
// guaranteed to be present.
Status ParsePointBatchHeader(WireReader* r, int expected_dim,
                             uint32_t* count, uint32_t* dim) {
  PRIVHP_ASSIGN_OR_RETURN(uint8_t tag, r->U8());
  if (tag != kPointBatchTag) {
    return Status::IOError("not a point batch frame");
  }
  PRIVHP_ASSIGN_OR_RETURN(*count, r->U32());
  PRIVHP_ASSIGN_OR_RETURN(*dim, r->U32());
  if (*count > 0 && *dim == 0) {
    return Status::IOError("point batch with zero dimension");
  }
  if (expected_dim > 0 && *count > 0 &&
      *dim != static_cast<uint32_t>(expected_dim)) {
    return Status::InvalidArgument(
        "point batch has dimension " + std::to_string(*dim) +
        ", expected " + std::to_string(expected_dim));
  }
  // Every coordinate is an 8-byte double; a header whose count*dim
  // outruns the payload is malformed, and checking up front keeps the
  // declared dim from driving reserve() before any bytes are verified.
  if (static_cast<uint64_t>(*count) * *dim > r->remaining() / 8) {
    return Status::IOError("point batch header exceeds frame payload");
  }
  return Status::OK();
}

template <typename Container>
Status DecodePointBatchInto(const std::string& payload, int expected_dim,
                            Container* out) {
  WireReader r(payload);
  uint32_t count = 0;
  uint32_t dim = 0;
  PRIVHP_RETURN_NOT_OK(ParsePointBatchHeader(&r, expected_dim, &count,
                                             &dim));
  for (uint32_t i = 0; i < count; ++i) {
    Point p(dim);
    PRIVHP_RETURN_NOT_OK(r.ReadDoubles(p.data(), dim));
    out->push_back(std::move(p));
  }
  return r.ExpectEnd();
}

}  // namespace

Status DecodePointBatch(const std::string& payload, int expected_dim,
                        std::deque<Point>* out) {
  return DecodePointBatchInto(payload, expected_dim, out);
}

Status DecodePointBatch(const std::string& payload, int expected_dim,
                        std::vector<Point>* out) {
  return DecodePointBatchInto(payload, expected_dim, out);
}

Status DecodePointBatch(const std::string& payload, int expected_dim,
                        PointBatch* out) {
  WireReader r(payload);
  uint32_t count = 0;
  uint32_t dim = 0;
  PRIVHP_RETURN_NOT_OK(ParsePointBatchHeader(&r, expected_dim, &count,
                                             &dim));
  if (count == 0) return r.ExpectEnd();
  const int d = static_cast<int>(dim);
  if (out->empty()) {
    if (out->dim() != d) out->Reset(d);
  } else if (out->dim() != d) {
    return Status::InvalidArgument(
        "point batch has dimension " + std::to_string(dim) +
        " but the receiving batch holds dimension " +
        std::to_string(out->dim()) + " points");
  }
  // The bounds guard above proved the coordinate block is fully present,
  // so this single bulk read cannot fail and the arena never holds
  // partially decoded rows.
  PRIVHP_RETURN_NOT_OK(r.ReadDoubles(out->AppendRows(count),
                                     static_cast<size_t>(count) * dim));
  return r.ExpectEnd();
}

SocketPointSink::SocketPointSink(const Socket* sock, size_t batch_size)
    : sock_(sock), batch_size_(batch_size == 0 ? 1 : batch_size) {}

SocketPointSink::SocketPointSink(FrameSendFn send_frame, size_t batch_size)
    : sock_(nullptr),
      send_fn_(std::move(send_frame)),
      batch_size_(batch_size == 0 ? 1 : batch_size) {}

namespace {

// The wire buffer takes its dimension from the first point and holds it
// for the stream's lifetime; a point of another dimension would encode
// a frame the receiver must reject anyway, so fail it at the sender
// with a usable message.
Status PrepareWireBuffer(PointBatch* buffer, size_t dim,
                         size_t reserve_points) {
  if (dim == 0) {
    return Status::InvalidArgument(
        "cannot stream zero-coordinate points");
  }
  const int d = static_cast<int>(dim);
  if (buffer->empty()) {
    if (buffer->dim() != d) {
      buffer->Reset(d);
      buffer->Reserve(reserve_points);
    }
    return Status::OK();
  }
  if (buffer->dim() != d) {
    return Status::InvalidArgument(
        "point has " + std::to_string(dim) +
        " coordinates but the stream carries " +
        std::to_string(buffer->dim()) + "-dimensional points");
  }
  return Status::OK();
}

}  // namespace

Status SocketPointSink::Add(const Point& x) {
  if (finished_) {
    return Status::FailedPrecondition("point stream already finished");
  }
  PRIVHP_RETURN_NOT_OK(PrepareWireBuffer(&buffer_, x.size(), batch_size_));
  buffer_.AppendPoint(x);
  if (buffer_.size() >= batch_size_) return Flush();
  return Status::OK();
}

Status SocketPointSink::AddAll(const std::vector<Point>& points) {
  if (finished_) {
    return Status::FailedPrecondition("point stream already finished");
  }
  // Append up to the frame boundary each round; Add() keeps the buffer
  // strictly below batch_size_ between calls, so room > 0 holds on
  // entry and after every Flush().
  for (size_t i = 0; i < points.size();) {
    PRIVHP_RETURN_NOT_OK(
        PrepareWireBuffer(&buffer_, points[i].size(), batch_size_));
    const size_t room = batch_size_ - buffer_.size();
    const size_t take = std::min(room, points.size() - i);
    for (size_t j = 0; j < take; ++j) {
      const Point& p = points[i + j];
      if (p.size() != static_cast<size_t>(buffer_.dim())) {
        PRIVHP_RETURN_NOT_OK(
            PrepareWireBuffer(&buffer_, p.size(), batch_size_));
      }
      buffer_.AppendPoint(p);
    }
    i += take;
    if (buffer_.size() >= batch_size_) PRIVHP_RETURN_NOT_OK(Flush());
  }
  return Status::OK();
}

Status SocketPointSink::AddAll(const PointBatch& batch) {
  if (finished_) {
    return Status::FailedPrecondition("point stream already finished");
  }
  if (batch.empty()) return Status::OK();
  PRIVHP_RETURN_NOT_OK(
      PrepareWireBuffer(&buffer_, static_cast<size_t>(batch.dim()),
                        batch_size_));
  const size_t d = static_cast<size_t>(batch.dim());
  // Arena-to-arena slices at frame boundaries: no per-point work at all
  // between the sampler and the wire.
  for (size_t i = 0; i < batch.size();) {
    const size_t room = batch_size_ - buffer_.size();
    const size_t take = std::min(room, batch.size() - i);
    buffer_.AppendFlat(batch.data() + i * d, take);
    i += take;
    if (buffer_.size() >= batch_size_) PRIVHP_RETURN_NOT_OK(Flush());
  }
  return Status::OK();
}

Status SocketPointSink::Flush() {
  if (buffer_.empty()) return Status::OK();
  std::string payload = EncodePointBatch(buffer_);
  const size_t payload_size = payload.size();
  PRIVHP_RETURN_NOT_OK(send_fn_ ? send_fn_(std::move(payload))
                                : SendFrame(*sock_, payload));
  num_sent_ += buffer_.size();
  bytes_sent_ += payload_size;
  buffer_.Clear();
  return Status::OK();
}

Status SocketPointSink::FinishStream() {
  if (finished_) {
    return Status::FailedPrecondition("point stream already finished");
  }
  PRIVHP_RETURN_NOT_OK(Flush());
  finished_ = true;
  std::string end = EncodePointStreamEnd(num_sent_);
  bytes_sent_ += end.size();
  return send_fn_ ? send_fn_(std::move(end)) : SendFrame(*sock_, end);
}

SocketPointSource::SocketPointSource(const Socket* sock, int expected_dim,
                                     CancelFn cancel,
                                     int idle_timeout_seconds)
    : sock_(sock),
      expected_dim_(expected_dim),
      cancel_(std::move(cancel)),
      idle_timeout_seconds_(idle_timeout_seconds) {}

SocketPointSource::SocketPointSource(FrameRecvFn recv_frame, int expected_dim)
    : sock_(nullptr),
      recv_fn_(std::move(recv_frame)),
      expected_dim_(expected_dim),
      idle_timeout_seconds_(0) {}

Result<bool> SocketPointSource::RecvNext() {
  Result<bool> r = [this]() -> Result<bool> {
    if (recv_fn_) return recv_fn_(&frame_);
    if (idle_timeout_seconds_ <= 0) {
      return RecvFrame(*sock_, &frame_, cancel_);
    }
    // The deadline restarts per frame: it bounds idle time between
    // frames, not the lifetime of a steadily streaming peer.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(idle_timeout_seconds_);
    return RecvFrame(*sock_, &frame_, [this, deadline]() {
      return (cancel_ && cancel_()) ||
             std::chrono::steady_clock::now() >= deadline;
    });
  }();
  // The frame layer yields FailedPrecondition only when the cancel
  // predicate fires, so the mapping is exact at this level.
  if (!r.ok() && r.status().IsFailedPrecondition()) cancelled_ = true;
  return r;
}

Status SocketPointSource::ConsumeEndFrame() {
  WireReader r(frame_);
  PRIVHP_RETURN_NOT_OK(r.U8().status());
  PRIVHP_ASSIGN_OR_RETURN(uint64_t total, r.U64());
  PRIVHP_RETURN_NOT_OK(r.ExpectEnd());
  if (total != num_received_) {
    return Status::IOError(
        "point stream declared " + std::to_string(total) +
        " points but delivered " + std::to_string(num_received_));
  }
  finished_ = true;
  return Status::OK();
}

Result<bool> SocketPointSource::RecvBatchFrame() {
  PRIVHP_ASSIGN_OR_RETURN(bool more, RecvNext());
  if (!more) {
    return Status::IOError("connection closed before end of point stream");
  }
  if (frame_.empty()) return Status::IOError("empty frame in point stream");
  bytes_received_ += frame_.size();
  if (static_cast<uint8_t>(frame_[0]) == kPointStreamEndTag) {
    PRIVHP_RETURN_NOT_OK(ConsumeEndFrame());
    return false;
  }
  ++num_batches_;
  return true;
}

Result<bool> SocketPointSource::FillBuffer() {
  while (buffer_.empty()) {
    PRIVHP_ASSIGN_OR_RETURN(bool more, RecvBatchFrame());
    if (!more) return false;
    PRIVHP_RETURN_NOT_OK(DecodePointBatch(frame_, expected_dim_, &buffer_));
  }
  return true;
}

Result<size_t> SocketPointSource::NextBatch(size_t max_points,
                                            std::vector<Point>* out) {
  out->clear();
  if (finished_ || max_points == 0) return size_t{0};
  // Points already staged by a Next() caller are served first so the two
  // access styles can be mixed without reordering the stream.
  if (!buffer_.empty()) {
    const size_t take = std::min(max_points, buffer_.size());
    for (size_t i = 0; i < take; ++i) {
      out->push_back(std::move(buffer_.front()));
      buffer_.pop_front();
    }
    num_received_ += take;
    return take;
  }
  // Decode whole frames straight into the caller's batch (empty batch
  // frames are legal — keep reading) until points arrive or the stream
  // ends. A full frame may exceed max_points; the contract allows it.
  while (out->empty()) {
    PRIVHP_ASSIGN_OR_RETURN(bool more, RecvBatchFrame());
    if (!more) return size_t{0};
    PRIVHP_RETURN_NOT_OK(DecodePointBatch(frame_, expected_dim_, out));
  }
  num_received_ += out->size();
  return out->size();
}

Result<size_t> SocketPointSource::NextBatch(size_t max_points,
                                            PointBatch* out) {
  out->Clear();
  if (finished_ || max_points == 0) return size_t{0};
  // Points already staged by a Next() caller are served first so the two
  // access styles can be mixed without reordering the stream.
  if (!buffer_.empty()) {
    const size_t take = std::min(max_points, buffer_.size());
    out->Reset(static_cast<int>(buffer_.front().size()));
    out->Reserve(take);
    for (size_t i = 0; i < take; ++i) {
      out->AppendPoint(buffer_.front());
      buffer_.pop_front();
    }
    num_received_ += take;
    return take;
  }
  // Decode whole frames straight into the arena (empty batch frames are
  // legal — keep reading) until points arrive or the stream ends. A full
  // frame may exceed max_points; the contract allows it.
  while (out->empty()) {
    PRIVHP_ASSIGN_OR_RETURN(bool more, RecvBatchFrame());
    if (!more) return size_t{0};
    PRIVHP_RETURN_NOT_OK(DecodePointBatch(frame_, expected_dim_, out));
  }
  num_received_ += out->size();
  return out->size();
}

Result<bool> SocketPointSource::Next(Point* out) {
  if (finished_) return false;
  PRIVHP_ASSIGN_OR_RETURN(bool more, FillBuffer());
  if (!more) return false;
  *out = std::move(buffer_.front());
  buffer_.pop_front();
  ++num_received_;
  return true;
}

Status SocketPointSource::SkipToEnd() {
  buffer_.clear();
  while (!finished_) {
    PRIVHP_ASSIGN_OR_RETURN(bool more, RecvNext());
    if (!more) {
      return Status::IOError("connection closed before end of point stream");
    }
    // Discard batches without decoding — the caller is already on an error
    // path; all that matters is regaining frame sync at the end marker.
    if (!frame_.empty() &&
        static_cast<uint8_t>(frame_[0]) == kPointStreamEndTag) {
      finished_ = true;
    }
  }
  return Status::OK();
}

}  // namespace privhp
