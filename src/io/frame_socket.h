// Stream sockets with length-prefixed framing — the transport under the
// service layer and the socket point streams.
//
// A frame is a u32 little-endian payload length followed by the payload
// bytes. Framing lives here (not in src/service/) so a PointSource /
// PointSink pair can ride raw sockets without pulling in the query
// protocol: the ingestion front end and the query server share one
// transport.
//
// All calls are blocking; Accept and RecvFrame take an optional
// cancellation predicate polled at a coarse interval so a server can shut
// down threads parked in accept()/recv().

#ifndef PRIVHP_IO_FRAME_SOCKET_H_
#define PRIVHP_IO_FRAME_SOCKET_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "common/status.h"

namespace privhp {

/// \brief Movable RAII wrapper over a socket file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
};

/// \brief Polled while blocked in Accept/RecvFrame; returning true aborts
/// the wait with a FailedPrecondition("cancelled") status.
using CancelFn = std::function<bool()>;

/// \brief Listens on TCP \p host:\p port. Port 0 binds an ephemeral port;
/// the bound port is written to \p bound_port when non-null.
Result<Socket> ListenTcp(const std::string& host, uint16_t port,
                         uint16_t* bound_port);

/// \brief Listens on a Unix-domain socket at \p path (unlinked first).
Result<Socket> ListenUnix(const std::string& path);

Result<Socket> ConnectTcp(const std::string& host, uint16_t port);
Result<Socket> ConnectUnix(const std::string& path);

/// \brief Accepts one connection; blocks until a peer arrives, polling
/// \p cancel (when set) roughly every 100 ms.
Result<Socket> Accept(const Socket& listener, const CancelFn& cancel = {});

/// \brief A connected AF_UNIX pair (tests and in-process plumbing).
Result<std::pair<Socket, Socket>> SocketPair();

/// \brief Sends one length-prefixed frame (u32 LE length + payload).
Status SendFrame(const Socket& sock, const std::string& payload);

/// \brief Receives one frame into \p payload. Returns false on clean EOF
/// at a frame boundary; EOF mid-frame is an IOError.
Result<bool> RecvFrame(const Socket& sock, std::string* payload,
                       const CancelFn& cancel = {});

/// \brief Upper bound on a single frame payload (64 MiB); larger lengths
/// are rejected as malformed so a bad peer cannot force huge allocations.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

}  // namespace privhp

#endif  // PRIVHP_IO_FRAME_SOCKET_H_
