// Stream sockets with length-prefixed framing — the transport under the
// service layer and the socket point streams.
//
// A frame is a u32 little-endian payload length followed by the payload
// bytes. Framing lives here (not in src/service/) so a PointSource /
// PointSink pair can ride raw sockets without pulling in the query
// protocol: the ingestion front end and the query server share one
// transport.
//
// Two I/O styles share the framing:
//  - Blocking SendFrame/RecvFrame for clients and simple tools; Accept
//    and RecvFrame take an optional cancellation predicate polled at a
//    coarse interval so a caller can shut down threads parked in
//    accept()/recv().
//  - Incremental FrameReader/FrameWriter state machines for readiness
//    loops: each call consumes or produces as many bytes as the
//    non-blocking socket allows, parks on EAGAIN, and resumes exactly
//    where it left off on the next readiness event. Frame bytes on the
//    wire are identical between the two styles.

#ifndef PRIVHP_IO_FRAME_SOCKET_H_
#define PRIVHP_IO_FRAME_SOCKET_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>

#include "common/status.h"

namespace privhp {

/// \brief Movable RAII wrapper over a socket file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
};

/// \brief Polled while blocked in Accept/RecvFrame; returning true aborts
/// the wait with a FailedPrecondition("cancelled") status.
using CancelFn = std::function<bool()>;

/// \brief Listens on TCP \p host:\p port. Port 0 binds an ephemeral port;
/// the bound port is written to \p bound_port when non-null.
Result<Socket> ListenTcp(const std::string& host, uint16_t port,
                         uint16_t* bound_port);

/// \brief Listens on a Unix-domain socket at \p path (unlinked first).
Result<Socket> ListenUnix(const std::string& path);

Result<Socket> ConnectTcp(const std::string& host, uint16_t port);
Result<Socket> ConnectUnix(const std::string& path);

/// \brief Accepts one connection; blocks until a peer arrives, polling
/// \p cancel (when set) roughly every 100 ms.
Result<Socket> Accept(const Socket& listener, const CancelFn& cancel = {});

/// \brief Non-blocking accept for readiness loops. When no connection is
/// pending, sets *\p would_block and returns an invalid Socket. The
/// accepted socket is left in non-blocking mode (FrameReader/FrameWriter
/// expect it that way).
Result<Socket> AcceptReady(const Socket& listener, bool* would_block);

/// \brief Toggles O_NONBLOCK on a connected socket.
Status SetSocketNonBlocking(const Socket& sock, bool enable);

/// \brief A connected AF_UNIX pair (tests and in-process plumbing).
Result<std::pair<Socket, Socket>> SocketPair();

/// \brief Sends one length-prefixed frame (u32 LE length + payload).
Status SendFrame(const Socket& sock, const std::string& payload);

/// \brief Receives one frame into \p payload. Returns false on clean EOF
/// at a frame boundary; EOF mid-frame is an IOError.
Result<bool> RecvFrame(const Socket& sock, std::string* payload,
                       const CancelFn& cancel = {});

/// \brief Upper bound on a single frame payload (64 MiB); larger lengths
/// are rejected as malformed so a bad peer cannot force huge allocations.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// \brief Incremental RecvFrame over a non-blocking socket.
///
/// Poll() reads whatever the kernel has buffered and returns kFrame once
/// a complete frame is assembled in frame() — call Poll() again for the
/// next frame. kNeedMore means the socket drained mid-frame (or between
/// frames): park the reader and call Poll() again on the next EPOLLIN.
/// A clean EOF at a frame boundary is kEof; EOF mid-frame, an oversized
/// length header, or a socket error come back as a Status error.
class FrameReader {
 public:
  enum class Event { kFrame, kNeedMore, kEof };

  Result<Event> Poll(const Socket& sock);

  /// \brief The last completed frame payload (valid after kFrame, until
  /// the next Poll()). Callers may std::move it out.
  std::string& frame() { return frame_; }

  /// \brief Total payload+header bytes consumed, for activity tracking.
  uint64_t bytes_received() const { return bytes_received_; }

  /// \brief True when unparsed bytes sit in the read buffer. Poll()
  /// over-reads the socket (one recv can carry many small frames), so a
  /// caller that stops polling early — a fairness cap, say — must
  /// reschedule itself when this is set: the kernel side may be drained
  /// and EPOLLIN will not fire again for buffered data.
  bool has_buffered() const { return pos_ < len_; }

 private:
  std::string frame_;
  std::string buf_;   ///< read buffer (sized once); [pos_, len_) unparsed
  size_t pos_ = 0;
  size_t len_ = 0;
  size_t body_have_ = 0;
  bool in_body_ = false;
  uint64_t bytes_received_ = 0;
};

/// \brief Incremental SendFrame over a non-blocking socket.
///
/// Enqueue() frames a payload (u32 LE header + bytes, same wire format
/// as SendFrame) into an output queue; Pump() writes until the socket
/// would block or the queue drains, returning true when empty. The
/// caller keeps EPOLLOUT armed exactly while pending_bytes() > 0.
class FrameWriter {
 public:
  Status Enqueue(std::string payload);

  /// \brief Writes queued bytes; true when the queue is fully drained.
  Result<bool> Pump(const Socket& sock);

  /// \brief Queued-but-unsent bytes (headers included).
  size_t pending_bytes() const { return pending_bytes_; }
  bool empty() const { return queue_.empty(); }

  /// \brief Total bytes handed to the kernel, for activity tracking.
  uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  std::deque<std::string> queue_;  // each entry: 4-byte header + payload
  size_t front_offset_ = 0;        // bytes of queue_.front() already sent
  size_t pending_bytes_ = 0;
  uint64_t bytes_sent_ = 0;
};

}  // namespace privhp

#endif  // PRIVHP_IO_FRAME_SOCKET_H_
