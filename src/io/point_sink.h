// Uniform producer/consumer interfaces for point streams.
//
// The build side of PrivHP is linear: shards, builders and baselines all
// consume a stream one point at a time. PointSink is the consumer
// interface they share, and PointSource is the producer interface file
// readers and in-memory vectors share, so any source can feed any
// consumer (Drain) — including several sinks in parallel, which is how
// BuildParallel partitions one stream across worker shards.

#ifndef PRIVHP_IO_POINT_SINK_H_
#define PRIVHP_IO_POINT_SINK_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "domain/domain.h"

namespace privhp {

/// \brief A consumer of streamed points (shards, builders, baselines).
class PointSink {
 public:
  virtual ~PointSink() = default;

  /// \brief Processes one stream element.
  virtual Status Add(const Point& x) = 0;

  /// \brief Move-accepting overload for producers handing over freshly
  /// built points (the sampling hot path): storing sinks take ownership
  /// instead of copying. Default forwards to the const-ref overload, so
  /// read-only sinks need not override it.
  virtual Status Add(Point&& x) { return Add(static_cast<const Point&>(x)); }

  /// \brief Processes a batch; default forwards to Add point-by-point.
  virtual Status AddAll(const std::vector<Point>& points);

  /// \brief Columnar batch (the zero-allocation hot path): shards ingest
  /// the arena directly and socket sinks encode wire frames straight
  /// from it. Default stages one reused scratch Point per row and
  /// forwards to Add, so point-at-a-time sinks need not override.
  virtual Status AddAll(const PointBatch& batch);

  /// \brief Points accepted so far (rejected points do not count).
  virtual uint64_t num_processed() const = 0;
};

/// \brief A producer of streamed points (file readers, vectors, sockets).
class PointSource {
 public:
  virtual ~PointSource() = default;

  /// \brief Reads the next point into \p out. Returns false at
  /// end-of-stream, an error Status on malformed input.
  virtual Result<bool> Next(Point* out) = 0;

  /// \brief Reads the next batch of points into \p out (cleared first)
  /// and returns the number read; 0 means end-of-stream. \p max_points
  /// is advisory: sources with natural framing (a decoded socket frame)
  /// may hand over a whole frame even when it is larger, so callers must
  /// accept any non-empty batch. The default loops Next(); batching
  /// sources override it to amortize per-point dispatch and hand over
  /// already-materialized batches without re-staging.
  virtual Result<size_t> NextBatch(size_t max_points,
                                   std::vector<Point>* out);

  /// \brief Columnar batch read: \p out is cleared (its dimension is the
  /// source's to set) and filled with up to \p max_points points —
  /// subject to the same natural-framing allowance as the vector form.
  /// The default loops Next() into the arena; framing sources override
  /// to decode whole frames straight into it.
  virtual Result<size_t> NextBatch(size_t max_points, PointBatch* out);
};

/// \brief PointSource over an in-memory dataset (not owned).
class VectorPointSource : public PointSource {
 public:
  explicit VectorPointSource(const std::vector<Point>* points)
      : points_(points) {}

  Result<bool> Next(Point* out) override;

 private:
  const std::vector<Point>* points_;
  size_t next_ = 0;
};

/// \brief PointSink that materializes the stream; adapts vector-built
/// consumers (PMM, the flat histogram, ...) to streaming plumbing.
class CollectingSink : public PointSink {
 public:
  /// \param domain Optional; when set, points are validated on Add.
  explicit CollectingSink(const Domain* domain = nullptr)
      : domain_(domain) {}

  Status Add(const Point& x) override;
  Status Add(Point&& x) override;
  /// \brief Appends arena rows without a per-row scratch staging point.
  Status AddAll(const PointBatch& batch) override;
  using PointSink::AddAll;
  uint64_t num_processed() const override { return points_.size(); }

  const std::vector<Point>& points() const { return points_; }
  std::vector<Point> TakePoints() { return std::move(points_); }

 private:
  const Domain* domain_;
  std::vector<Point> points_;
};

/// \brief Points per batch Drain pumps when the source has no natural
/// framing of its own.
inline constexpr size_t kDrainBatchSize = 1024;

/// \brief Pumps \p source dry into \p sink in batches (NextBatch ->
/// AddAll), so batching sinks see whole batches rather than single
/// points. The batches travel as one reused columnar PointBatch — no
/// per-point allocation anywhere between a batching source and a
/// batching sink. Stops at the first error from either side and returns
/// it; a sink that rejects a batch atomically (PrivHPShard) is left
/// without any of that batch's points.
Status Drain(PointSource* source, PointSink* sink);

}  // namespace privhp

#endif  // PRIVHP_IO_POINT_SINK_H_
