// Binary wire encoding shared by the socket point streams and the
// service protocol.
//
// All integers are little-endian; doubles travel as their IEEE-754 bit
// pattern in a uint64. Strings are a u32 length followed by raw bytes.
// WireReader is bounds-checked: reading past the end of the buffer
// returns an error Status instead of touching out-of-range memory, so a
// malformed frame from the network can never crash the server.

#ifndef PRIVHP_IO_WIRE_FORMAT_H_
#define PRIVHP_IO_WIRE_FORMAT_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace privhp {

/// \brief Append-only encoder for one wire frame payload.
class WireWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutDouble(double v);
  /// \brief \p n doubles, each as its IEEE-754 bit pattern little-endian.
  /// On a little-endian host this is one append of the raw array (the
  /// columnar point-batch frames encode whole arenas this way);
  /// byte-identical to n PutDouble calls on any host.
  void PutDoubleArray(const double* v, size_t n);
  /// \brief u32 length + raw bytes (also used for opaque blobs).
  void PutString(const std::string& s);
  void PutBytes(const void* data, size_t size);

  const std::string& str() const { return buf_; }
  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// \brief Bounds-checked decoder over a received frame payload.
///
/// The viewed buffer must outlive the reader.
class WireReader {
 public:
  /// Constructs an empty reader (every read fails as truncated).
  WireReader() = default;
  explicit WireReader(const std::string& data)
      : p_(data.data()), remaining_(data.size()) {}
  WireReader(const char* data, size_t size) : p_(data), remaining_(size) {}

  Result<uint8_t> U8();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<double> Double();
  /// \brief Reads \p n wire doubles into \p out — bounds-checked up
  /// front, then one memcpy on a little-endian host. Value-identical to
  /// n Double() calls.
  Status ReadDoubles(double* out, size_t n);
  /// \brief Reads a u32 length + that many bytes.
  Result<std::string> String();
  /// \brief Reads a u32 element count, rejecting one the remaining
  /// payload cannot carry at \p elem_bytes per element — the allocation
  /// guard every decoder of a peer-declared count must use before
  /// reserving storage sized from it.
  Result<uint32_t> BoundedCount(size_t elem_bytes);

  size_t remaining() const { return remaining_; }
  bool AtEnd() const { return remaining_ == 0; }
  /// \brief OK iff the whole payload was consumed (trailing bytes in a
  /// frame indicate a protocol mismatch).
  Status ExpectEnd() const;

 private:
  Status Need(size_t n) const;

  const char* p_ = nullptr;
  size_t remaining_ = 0;
};

}  // namespace privhp

#endif  // PRIVHP_IO_WIRE_FORMAT_H_
