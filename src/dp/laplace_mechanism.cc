#include "dp/laplace_mechanism.h"

#include "common/macros.h"

namespace privhp {

LaplaceMechanism::LaplaceMechanism(double sensitivity, double epsilon)
    : sensitivity_(sensitivity), epsilon_(epsilon) {
  PRIVHP_CHECK(sensitivity_ > 0.0);
  PRIVHP_CHECK(epsilon_ > 0.0);
}

Result<LaplaceMechanism> LaplaceMechanism::Make(double sensitivity,
                                                double epsilon) {
  if (sensitivity <= 0.0) {
    return Status::InvalidArgument("sensitivity must be positive");
  }
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  return LaplaceMechanism(sensitivity, epsilon);
}

double LaplaceMechanism::Release(double value, RandomEngine* rng) const {
  return value + rng->Laplace(scale());
}

std::vector<double> LaplaceMechanism::ReleaseVector(
    const std::vector<double>& values, RandomEngine* rng) const {
  std::vector<double> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = values[i] + rng->Laplace(scale());
  }
  return out;
}

GeometricMechanism::GeometricMechanism(double sensitivity, double epsilon)
    : sensitivity_(sensitivity), epsilon_(epsilon) {
  PRIVHP_CHECK(sensitivity_ > 0.0);
  PRIVHP_CHECK(epsilon_ > 0.0);
}

Result<GeometricMechanism> GeometricMechanism::Make(double sensitivity,
                                                    double epsilon) {
  if (sensitivity <= 0.0) {
    return Status::InvalidArgument("sensitivity must be positive");
  }
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  return GeometricMechanism(sensitivity, epsilon);
}

int64_t GeometricMechanism::Release(int64_t value, RandomEngine* rng) const {
  return value + rng->DiscreteLaplace(scale());
}

}  // namespace privhp
