#include "dp/privacy_accountant.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/table_printer.h"

namespace privhp {

namespace {
// Relative slack for floating-point accumulation of many sigma_l charges.
constexpr double kBudgetTolerance = 1e-9;
}  // namespace

PrivacyAccountant::PrivacyAccountant(double budget) : budget_(budget) {
  PRIVHP_CHECK(budget_ > 0.0);
}

Result<PrivacyAccountant> PrivacyAccountant::Make(double budget) {
  if (budget <= 0.0) {
    return Status::InvalidArgument("privacy budget must be positive");
  }
  return PrivacyAccountant(budget);
}

Status PrivacyAccountant::Charge(double epsilon, const std::string& label) {
  if (epsilon < 0.0) {
    return Status::InvalidArgument("cannot charge negative epsilon for '" +
                                   label + "'");
  }
  if (spent_ + epsilon > budget_ * (1.0 + kBudgetTolerance)) {
    return Status::FailedPrecondition(
        "privacy budget exceeded charging '" + label + "': spent " +
        std::to_string(spent_) + " + " + std::to_string(epsilon) +
        " > budget " + std::to_string(budget_));
  }
  spent_ += epsilon;
  ledger_.emplace_back(label, epsilon);
  return Status::OK();
}

double PrivacyAccountant::Remaining() const {
  return std::max(0.0, budget_ - spent_);
}

std::string PrivacyAccountant::ToString() const {
  std::string out = "privacy ledger (budget " +
                    TablePrinter::FormatNumber(budget_) + ", spent " +
                    TablePrinter::FormatNumber(spent_) + "):\n";
  for (const auto& [label, eps] : ledger_) {
    out += "  " + label + ": " + TablePrinter::FormatNumber(eps) + "\n";
  }
  return out;
}

}  // namespace privhp
