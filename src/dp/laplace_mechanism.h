// The Laplace mechanism and relatives (paper Section 3.1, Lemma 1).

#ifndef PRIVHP_DP_LAPLACE_MECHANISM_H_
#define PRIVHP_DP_LAPLACE_MECHANISM_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace privhp {

/// \brief eps-DP release of a scalar with known L1 sensitivity:
/// M(x) = f(x) + Laplace(sensitivity / eps) (Lemma 1).
class LaplaceMechanism {
 public:
  /// \param sensitivity L1 sensitivity of the statistic (> 0).
  /// \param epsilon Privacy parameter (> 0).
  LaplaceMechanism(double sensitivity, double epsilon);

  static Result<LaplaceMechanism> Make(double sensitivity, double epsilon);

  /// \brief Releases value + Laplace(scale()).
  double Release(double value, RandomEngine* rng) const;

  /// \brief Releases a vector, each coordinate independently noised.
  /// Correct when \p sensitivity bounds the L1 distance of the whole
  /// vector on neighbors (e.g. a histogram with disjoint buckets).
  std::vector<double> ReleaseVector(const std::vector<double>& values,
                                    RandomEngine* rng) const;

  /// \brief Noise scale: sensitivity / epsilon.
  double scale() const { return sensitivity_ / epsilon_; }

  double sensitivity() const { return sensitivity_; }
  double epsilon() const { return epsilon_; }

 private:
  double sensitivity_;
  double epsilon_;
};

/// \brief eps-DP integer release via the two-sided geometric (discrete
/// Laplace) mechanism; exact counterpart of LaplaceMechanism for counts.
class GeometricMechanism {
 public:
  GeometricMechanism(double sensitivity, double epsilon);

  static Result<GeometricMechanism> Make(double sensitivity, double epsilon);

  int64_t Release(int64_t value, RandomEngine* rng) const;

  double scale() const { return sensitivity_ / epsilon_; }

 private:
  double sensitivity_;
  double epsilon_;
};

}  // namespace privhp

#endif  // PRIVHP_DP_LAPLACE_MECHANISM_H_
