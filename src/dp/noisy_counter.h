// Noisy exact counter: a scalar counter initialized with Laplace noise
// (Algorithm 1, Line 6). Incrementing a pre-noised counter is
// distributionally identical to noising the final count, because the noise
// is data-independent; initializing up front is what makes the one-pass
// release valid.

#ifndef PRIVHP_DP_NOISY_COUNTER_H_
#define PRIVHP_DP_NOISY_COUNTER_H_

#include "common/random.h"
#include "common/status.h"

namespace privhp {

/// \brief A counter carrying Laplace(1/sigma) initialization noise.
class NoisyCounter {
 public:
  /// \param sigma Per-counter privacy parameter; sigma <= 0 disables noise
  ///        (non-private ablations only).
  /// \param rng Noise source, drawn once at construction.
  NoisyCounter(double sigma, RandomEngine* rng);

  /// \brief Adds \p delta to the count.
  void Increment(double delta = 1.0) { value_ += delta; }

  /// \brief Current noisy count.
  double value() const { return value_; }

  /// \brief The noise that was added at initialization (for error
  /// accounting in tests; a real deployment never reads this).
  double initial_noise() const { return initial_noise_; }

 private:
  double value_ = 0.0;
  double initial_noise_ = 0.0;
};

}  // namespace privhp

#endif  // PRIVHP_DP_NOISY_COUNTER_H_
