#include "dp/noisy_counter.h"

#include "common/macros.h"

namespace privhp {

NoisyCounter::NoisyCounter(double sigma, RandomEngine* rng) {
  if (sigma > 0.0) {
    PRIVHP_CHECK(rng != nullptr);
    initial_noise_ = rng->Laplace(1.0 / sigma);
    value_ = initial_noise_;
  }
}

}  // namespace privhp
