// Per-level privacy-budget allocation {sigma_l} (paper Lemma 5).
//
// Theorem 2 holds for any {sigma_l} with sum sigma_l = eps. Lemma 5's
// Lagrange-multiplier optimum minimizes the Delta_noise bound:
//
//   sigma_l = eps * sqrt(Gamma_{l-1})        / S   for l <= L*   (counters)
//   sigma_l = eps * sqrt(j k gamma_{l-1})    / S   for l  > L*   (sketches)
//   S = sum of the square roots above, Gamma_{-1} := Gamma_0.
//
// The uniform policy (sigma_l = eps / (L+1)) is kept for the EXP-BUDGET
// ablation bench.

#ifndef PRIVHP_DP_BUDGET_ALLOCATOR_H_
#define PRIVHP_DP_BUDGET_ALLOCATOR_H_

#include <vector>

#include "common/status.h"
#include "domain/domain.h"

namespace privhp {

/// \brief Policy for splitting eps across hierarchy levels.
enum class BudgetPolicy {
  kOptimal,  ///< Lemma 5's closed-form optimum.
  kUniform,  ///< eps / (L+1) per level (ablation baseline).
};

/// \brief A per-level privacy split: sigma[l] for l = 0..L,
/// sum(sigma) == epsilon.
struct BudgetPlan {
  std::vector<double> sigma;
  double epsilon = 0.0;

  /// \brief Number of levels covered (L + 1).
  size_t size() const { return sigma.size(); }
};

/// \brief Computes {sigma_l} for a hierarchy over \p domain.
///
/// \param domain Supplies Gamma_l and gamma_l.
/// \param epsilon Total budget (> 0).
/// \param l_star Pruning level L* (0 <= l_star <= l_max).
/// \param l_max Hierarchy depth L.
/// \param k Pruning parameter (branches per level below L*).
/// \param sketch_depth Sketch rows j.
Result<BudgetPlan> AllocateBudget(const Domain& domain, double epsilon,
                                  int l_star, int l_max, size_t k,
                                  size_t sketch_depth, BudgetPolicy policy);

/// \brief The Delta_noise objective of Theorem 3 evaluated at \p plan
/// (up to the absolute constant): (1/n) * [ sum_{l<=L*} Gamma_{l-1}/sigma_l
/// + sum_{l>L*} j k gamma_{l-1}/sigma_l ]. Used by tests to verify the
/// optimal plan beats alternatives, and by benches to report predicted
/// noise cost.
double NoiseObjective(const Domain& domain, const BudgetPlan& plan,
                      int l_star, size_t k, size_t sketch_depth, double n);

}  // namespace privhp

#endif  // PRIVHP_DP_BUDGET_ALLOCATOR_H_
