// Privacy-budget accounting under basic composition (paper Lemma 3).
//
// Every mechanism in the pipeline charges its epsilon against an
// accountant; Theorem 2's guarantee (sum sigma_l = eps) is then an
// invariant the builder asserts rather than an informal argument.

#ifndef PRIVHP_DP_PRIVACY_ACCOUNTANT_H_
#define PRIVHP_DP_PRIVACY_ACCOUNTANT_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace privhp {

/// \brief Tracks cumulative epsilon consumption under basic composition.
class PrivacyAccountant {
 public:
  /// \param budget Total epsilon available; Charge() fails when exceeded
  ///        (with a small relative tolerance for float accumulation).
  explicit PrivacyAccountant(double budget);

  static Result<PrivacyAccountant> Make(double budget);

  /// \brief Records that a sub-mechanism labeled \p label consumed
  /// \p epsilon. Fails if the budget would be exceeded.
  Status Charge(double epsilon, const std::string& label);

  /// \brief Total epsilon consumed so far.
  double Spent() const { return spent_; }

  /// \brief Budget minus spent (never negative).
  double Remaining() const;

  double budget() const { return budget_; }

  /// \brief Ledger of (label, epsilon) charges in charge order.
  const std::vector<std::pair<std::string, double>>& ledger() const {
    return ledger_;
  }

  /// \brief Human-readable ledger dump for reports.
  std::string ToString() const;

 private:
  double budget_;
  double spent_ = 0.0;
  std::vector<std::pair<std::string, double>> ledger_;
};

}  // namespace privhp

#endif  // PRIVHP_DP_PRIVACY_ACCOUNTANT_H_
