// The binary mechanism for private counting under continual observation
// (Chan-Shi-Song / Dwork et al.).
//
// The paper's release model is 1-pass (output once, after the stream),
// but Section 3.1 notes the method "can be adapted to continual
// observation by replacing the counters and sketches with their continual
// observation counterparts". This is that counterpart for the counter: an
// eps-DP running count whose every prefix can be published, with
// O(log^{3/2} T / eps) error instead of the 1-shot counter's O(1/eps).

#ifndef PRIVHP_DP_BINARY_MECHANISM_H_
#define PRIVHP_DP_BINARY_MECHANISM_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace privhp {

/// \brief eps-DP continual counter over a stream of at most `horizon`
/// increments in {0, 1}.
///
/// Maintains one noisy partial sum per dyadic block of the time axis;
/// each increment touches at most log2(horizon)+1 blocks, and each
/// released prefix combines at most that many noisy blocks.
class BinaryMechanismCounter {
 public:
  /// \param horizon Upper bound on the number of Add() calls (T).
  /// \param epsilon Privacy budget for the entire release sequence.
  /// \param seed Noise seed.
  BinaryMechanismCounter(uint64_t horizon, double epsilon, uint64_t seed);

  static Result<BinaryMechanismCounter> Make(uint64_t horizon,
                                             double epsilon, uint64_t seed);

  /// \brief Processes the next stream element (value 0 or 1). Fails after
  /// `horizon` elements.
  Status Add(uint64_t value);

  /// \brief The private running count after the elements added so far.
  /// Safe to call after every Add (continual observation).
  double Count() const;

  /// \brief Elements consumed.
  uint64_t steps() const { return steps_; }

  /// \brief Per-block noise scale: (levels) / epsilon.
  double NoiseScale() const;

  size_t MemoryBytes() const;

 private:
  int levels_;  // log2(horizon) + 1
  uint64_t horizon_;
  double epsilon_;
  uint64_t steps_ = 0;
  RandomEngine rng_;
  // One p-sum per level: exact value + its current noise draw.
  std::vector<double> block_sum_;
  std::vector<double> block_noise_;
};

}  // namespace privhp

#endif  // PRIVHP_DP_BINARY_MECHANISM_H_
