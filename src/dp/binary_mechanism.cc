#include "dp/binary_mechanism.h"

#include <algorithm>

#include "common/bits.h"
#include "common/macros.h"

namespace privhp {

// Chan-Shi-Song p-sum formulation. Writing the current time t in binary,
// the released count is the sum of one noisy p-sum per set bit. On the
// t-th arrival, with i the lowest set bit of t, p-sum i absorbs the
// lower-order p-sums plus the new item and receives fresh noise; the
// lower p-sums reset. Each item contributes to at most `levels_` p-sums,
// so per-p-sum noise Laplace(levels/eps) gives eps-DP for the whole
// release sequence.

BinaryMechanismCounter::BinaryMechanismCounter(uint64_t horizon,
                                               double epsilon, uint64_t seed)
    : levels_(CeilLog2(std::max<uint64_t>(2, horizon)) + 1),
      horizon_(horizon),
      epsilon_(epsilon),
      rng_(seed),
      block_sum_(levels_, 0.0),
      block_noise_(levels_, 0.0) {
  PRIVHP_CHECK(horizon_ >= 1);
  PRIVHP_CHECK(epsilon_ > 0.0);
}

Result<BinaryMechanismCounter> BinaryMechanismCounter::Make(uint64_t horizon,
                                                            double epsilon,
                                                            uint64_t seed) {
  if (horizon == 0) {
    return Status::InvalidArgument("horizon must be >= 1");
  }
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  return BinaryMechanismCounter(horizon, epsilon, seed);
}

double BinaryMechanismCounter::NoiseScale() const {
  return static_cast<double>(levels_) / epsilon_;
}

Status BinaryMechanismCounter::Add(uint64_t value) {
  if (value > 1) {
    return Status::InvalidArgument("binary mechanism takes 0/1 increments");
  }
  if (steps_ >= horizon_) {
    return Status::FailedPrecondition("stream horizon exhausted");
  }
  ++steps_;
  // i = lowest set bit of the new time step.
  int i = 0;
  while (((steps_ >> i) & 1u) == 0) ++i;
  PRIVHP_CHECK(i < levels_);
  // p-sum i absorbs all lower p-sums plus the new item.
  double absorbed = static_cast<double>(value);
  for (int j = 0; j < i; ++j) {
    absorbed += block_sum_[j];
    block_sum_[j] = 0.0;
    block_noise_[j] = 0.0;
  }
  block_sum_[i] = absorbed;
  block_noise_[i] = rng_.Laplace(NoiseScale());
  return Status::OK();
}

double BinaryMechanismCounter::Count() const {
  double count = 0.0;
  for (int b = 0; b < levels_; ++b) {
    if ((steps_ >> b) & 1u) count += block_sum_[b] + block_noise_[b];
  }
  return count;
}

size_t BinaryMechanismCounter::MemoryBytes() const {
  return sizeof(*this) + 2 * block_sum_.size() * sizeof(double);
}

}  // namespace privhp
