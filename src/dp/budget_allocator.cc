#include "dp/budget_allocator.h"

#include <cmath>

#include "common/macros.h"

namespace privhp {

namespace {
// Gamma_{l-1} with the paper's convention Gamma_{-1} := Gamma_0.
double GammaPrev(const Domain& domain, int l) {
  return domain.LevelDiameterSum(l >= 1 ? l - 1 : 0);
}
double GammaSmallPrev(const Domain& domain, int l) {
  return domain.CellDiameter(l >= 1 ? l - 1 : 0);
}
}  // namespace

Result<BudgetPlan> AllocateBudget(const Domain& domain, double epsilon,
                                  int l_star, int l_max, size_t k,
                                  size_t sketch_depth, BudgetPolicy policy) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (l_star < 0 || l_max < l_star) {
    return Status::InvalidArgument(
        "budget allocation requires 0 <= l_star <= l_max (got l_star=" +
        std::to_string(l_star) + ", l_max=" + std::to_string(l_max) + ")");
  }
  if (l_max > domain.max_level()) {
    return Status::OutOfRange("hierarchy depth " + std::to_string(l_max) +
                              " exceeds domain max level " +
                              std::to_string(domain.max_level()));
  }
  if (l_max > l_star && (k == 0 || sketch_depth == 0)) {
    return Status::InvalidArgument(
        "sketch levels present but k or sketch depth is zero");
  }

  BudgetPlan plan;
  plan.epsilon = epsilon;
  plan.sigma.resize(l_max + 1);

  if (policy == BudgetPolicy::kUniform) {
    const double share = epsilon / static_cast<double>(l_max + 1);
    for (double& s : plan.sigma) s = share;
    return plan;
  }

  // Lemma 5 / Equation (19): sigma_l proportional to sqrt of the level's
  // coefficient in the Delta_noise objective.
  std::vector<double> roots(l_max + 1);
  double total = 0.0;
  for (int l = 0; l <= l_max; ++l) {
    const double coeff =
        l <= l_star ? GammaPrev(domain, l)
                    : static_cast<double>(sketch_depth) *
                          static_cast<double>(k) * GammaSmallPrev(domain, l);
    roots[l] = std::sqrt(coeff);
    total += roots[l];
  }
  PRIVHP_CHECK(total > 0.0);
  for (int l = 0; l <= l_max; ++l) {
    plan.sigma[l] = epsilon * roots[l] / total;
  }
  return plan;
}

double NoiseObjective(const Domain& domain, const BudgetPlan& plan,
                      int l_star, size_t k, size_t sketch_depth, double n) {
  PRIVHP_CHECK(n > 0.0);
  const int l_max = static_cast<int>(plan.sigma.size()) - 1;
  double obj = 0.0;
  for (int l = 0; l <= l_max; ++l) {
    if (plan.sigma[l] <= 0.0) continue;
    const double coeff =
        l <= l_star ? GammaPrev(domain, l)
                    : static_cast<double>(sketch_depth) *
                          static_cast<double>(k) * GammaSmallPrev(domain, l);
    obj += coeff / plan.sigma[l];
  }
  return obj / n;
}

}  // namespace privhp
