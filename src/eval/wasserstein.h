// 1-Wasserstein distance estimators (paper Section 3.2, Equation 1).
//
// The evaluation harness measures E[W1(mu_X, T)] for every generator.
// Four complementary estimators are provided:
//
//  * Wasserstein1DSamples — exact W1 between two 1-D point clouds
//    (integral of |CDF difference|); used for every d = 1 experiment.
//  * GridEmd — exact optimal transport between two discrete measures on
//    the level-l cell grid, via min-cost flow; used for d >= 2 at moderate
//    grid levels (quantization error <= gamma_l).
//  * TreeWasserstein — the hierarchical upper bound
//    sum_l gamma_l * (1/2) * sum_{cells} |p - q|, the transport cost along
//    the decomposition tree. Cheap at any scale; this is the quantity the
//    paper's own bounds control, so shape comparisons use it when exact
//    EMD is too expensive.
//  * SlicedW1 — Monte-Carlo sliced Wasserstein for d >= 2 point clouds
//    (cross-check of GridEmd).

#ifndef PRIVHP_EVAL_WASSERSTEIN_H_
#define PRIVHP_EVAL_WASSERSTEIN_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "domain/domain.h"

namespace privhp {

/// \brief Exact W1 between two 1-D samples (uniform weights; sizes may
/// differ). O(n log n).
double Wasserstein1DSamples(std::vector<double> a, std::vector<double> b);

/// \brief Exact W1 between two 1-D point clouds, taking coordinate 0.
double Wasserstein1DPoints(const std::vector<Point>& a,
                           const std::vector<Point>& b);

/// \brief Exact W1 between two discrete distributions supported on the
/// same sorted \p positions (p and q sum to 1): the prefix-difference
/// integral. O(n).
double Wasserstein1DDiscrete(const std::vector<double>& positions,
                             const std::vector<double>& p,
                             const std::vector<double>& q);

/// \brief Exact EMD between dense level-\p level cell distributions \p p
/// and \p q over \p domain (cell centers as support, domain metric as
/// ground cost), via min-cost flow.
///
/// Fails if the union of supports exceeds \p max_support cells (flow
/// network would be too large); fall back to TreeWasserstein then.
Result<double> GridEmd(const Domain& domain, int level,
                       const std::vector<double>& p,
                       const std::vector<double>& q,
                       size_t max_support = 4096);

/// \brief Tree (hierarchical) transport distance between dense level-L
/// distributions: sum_{l=1..L} gamma_l * (1/2) * sum_theta |p_theta -
/// q_theta| with p,q aggregated up the tree. Upper-bounds W1 on the
/// domain's metric; exact for the tree metric.
double TreeWasserstein(const Domain& domain, int level,
                       const std::vector<double>& p,
                       const std::vector<double>& q);

/// \brief Monte-Carlo sliced W1 between d-dimensional point clouds:
/// average over \p num_projections random directions of the exact 1-D W1
/// of the projections.
double SlicedW1(const std::vector<Point>& a, const std::vector<Point>& b,
                size_t num_projections, RandomEngine* rng);

/// \brief Quantizes a point cloud to the dense level-\p level cell
/// distribution over \p domain (normalized to sum 1; empty input gives
/// all-zero).
Result<std::vector<double>> QuantizeToLevel(const Domain& domain,
                                            const std::vector<Point>& points,
                                            int level);

}  // namespace privhp

#endif  // PRIVHP_EVAL_WASSERSTEIN_H_
