// Downstream-utility metrics beyond W1, used by the examples and benches:
// range-query error (the classic synthetic-data acceptance test) and
// simple summary accumulators.

#ifndef PRIVHP_EVAL_METRICS_H_
#define PRIVHP_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "domain/domain.h"

namespace privhp {

/// \brief Streaming mean / stddev / min / max accumulator (Welford).
class RunningStats {
 public:
  void Add(double x);
  size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// \brief Average absolute error of random axis-aligned range queries:
/// |fraction of data in box - fraction of synthetic in box| over
/// \p num_queries random boxes in [0,1]^d-style domains.
///
/// Boxes are drawn as random cells of the domain at random levels
/// in [1, max_query_level], so the query class matches the decomposition
/// geometry.
Result<double> RangeQueryError(const Domain& domain,
                               const std::vector<Point>& data,
                               const std::vector<Point>& synthetic,
                               size_t num_queries, int max_query_level,
                               RandomEngine* rng);

}  // namespace privhp

#endif  // PRIVHP_EVAL_METRICS_H_
