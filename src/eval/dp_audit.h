// Empirical differential-privacy auditing (EXP-PRIV).
//
// Theorem 2 is verified two ways: unit tests assert the noise scales and
// sensitivities analytically, and this auditor estimates the privacy loss
// empirically — run the mechanism many times on a fixed pair of
// neighboring inputs, histogram a scalar projection of the outputs, and
// bound max_z |log(Pr[A(X)=z] / Pr[A(X')=z])|. The estimate lower-bounds
// the true epsilon (coarse bins and finite trials can only hide loss), so
// the meaningful assertion is  epsilon_hat <= epsilon + slack.

#ifndef PRIVHP_EVAL_DP_AUDIT_H_
#define PRIVHP_EVAL_DP_AUDIT_H_

#include <functional>

#include "common/random.h"
#include "common/status.h"

namespace privhp {

/// \brief Options for the histogram-ratio estimator.
struct DpAuditOptions {
  size_t trials = 20000;   ///< Mechanism runs per input.
  size_t bins = 40;        ///< Histogram resolution.
  double min_mass = 0.01;  ///< Ignore bins with less combined mass (too
                           ///< noisy to estimate a ratio).
};

/// \brief Estimated privacy loss between two output distributions.
struct DpAuditResult {
  double epsilon_hat = 0.0;  ///< max over kept bins of |log ratio|.
  size_t bins_used = 0;      ///< Bins that passed the mass threshold.
};

/// \brief Estimates the privacy loss of a randomized scalar mechanism.
///
/// \param run_on_x Draws one mechanism output on input X.
/// \param run_on_x_prime Draws one output on the neighboring input X'.
Result<DpAuditResult> EstimateEpsilon(
    const std::function<double(RandomEngine*)>& run_on_x,
    const std::function<double(RandomEngine*)>& run_on_x_prime,
    const DpAuditOptions& options, RandomEngine* rng);

}  // namespace privhp

#endif  // PRIVHP_EVAL_DP_AUDIT_H_
