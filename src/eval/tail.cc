#include "eval/tail.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace privhp {

Result<std::vector<double>> LevelCounts(const Domain& domain,
                                        const std::vector<Point>& data,
                                        int level) {
  if (level < 0 || level > 26) {
    return Status::InvalidArgument("LevelCounts supports levels 0..26");
  }
  if (level > domain.max_level()) {
    return Status::OutOfRange("level exceeds domain max level");
  }
  std::vector<double> counts(size_t{1} << level, 0.0);
  for (const Point& x : data) counts[domain.Locate(x, level)] += 1.0;
  return counts;
}

double TailNorm(std::vector<double> v, size_t k) {
  if (k >= v.size()) return 0.0;
  std::nth_element(v.begin(), v.begin() + k, v.end(),
                   std::greater<double>());
  double tail = 0.0;
  for (size_t i = k; i < v.size(); ++i) tail += v[i];
  return tail;
}

Result<double> TailNormAtLevel(const Domain& domain,
                               const std::vector<Point>& data, int level,
                               size_t k) {
  PRIVHP_ASSIGN_OR_RETURN(std::vector<double> counts,
                          LevelCounts(domain, data, level));
  return TailNorm(std::move(counts), k);
}

Result<double> PredictedApproxTerm(const Domain& domain,
                                   const std::vector<Point>& data, int l_star,
                                   int l_max, size_t k, size_t sketch_depth) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  const int tail_level = std::min(l_max, 26);
  PRIVHP_ASSIGN_OR_RETURN(const double tail,
                          TailNormAtLevel(domain, data, tail_level, k));
  double diam_sum = 0.0;
  for (int l = l_star + 1; l <= l_max; ++l) {
    diam_sum += domain.CellDiameter(l - 1);
  }
  const double n = static_cast<double>(data.size());
  return (tail / n + std::ldexp(1.0, -static_cast<int>(sketch_depth))) *
         diam_sum;
}

}  // namespace privhp
