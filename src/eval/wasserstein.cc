#include "eval/wasserstein.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"
#include "eval/min_cost_flow.h"

namespace privhp {

double Wasserstein1DSamples(std::vector<double> a, std::vector<double> b) {
  PRIVHP_CHECK(!a.empty() && !b.empty());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  // W1 = integral over x of |F_a(x) - F_b(x)|, evaluated by sweeping the
  // merged order statistics.
  const double wa = 1.0 / static_cast<double>(a.size());
  const double wb = 1.0 / static_cast<double>(b.size());
  size_t ia = 0, ib = 0;
  double cdf_diff = 0.0;  // F_a - F_b so far
  double prev = std::min(a[0], b[0]);
  double total = 0.0;
  while (ia < a.size() || ib < b.size()) {
    const double xa = ia < a.size() ? a[ia]
                                    : std::numeric_limits<double>::infinity();
    const double xb = ib < b.size() ? b[ib]
                                    : std::numeric_limits<double>::infinity();
    const double x = std::min(xa, xb);
    total += std::abs(cdf_diff) * (x - prev);
    prev = x;
    while (ia < a.size() && a[ia] == x) {
      cdf_diff += wa;
      ++ia;
    }
    while (ib < b.size() && b[ib] == x) {
      cdf_diff -= wb;
      ++ib;
    }
  }
  return total;
}

double Wasserstein1DPoints(const std::vector<Point>& a,
                           const std::vector<Point>& b) {
  std::vector<double> xa(a.size()), xb(b.size());
  for (size_t i = 0; i < a.size(); ++i) xa[i] = a[i][0];
  for (size_t i = 0; i < b.size(); ++i) xb[i] = b[i][0];
  return Wasserstein1DSamples(std::move(xa), std::move(xb));
}

double Wasserstein1DDiscrete(const std::vector<double>& positions,
                             const std::vector<double>& p,
                             const std::vector<double>& q) {
  PRIVHP_CHECK(positions.size() == p.size() && p.size() == q.size());
  double total = 0.0;
  double prefix = 0.0;
  for (size_t i = 0; i + 1 < positions.size(); ++i) {
    prefix += p[i] - q[i];
    total += std::abs(prefix) * (positions[i + 1] - positions[i]);
  }
  return total;
}

Result<double> GridEmd(const Domain& domain, int level,
                       const std::vector<double>& p,
                       const std::vector<double>& q, size_t max_support) {
  if (p.size() != q.size() || p.size() != (size_t{1} << level)) {
    return Status::InvalidArgument(
        "GridEmd requires dense level distributions of size 2^level");
  }
  // Only the difference measure needs transporting.
  struct Mass {
    uint64_t cell;
    double amount;
  };
  std::vector<Mass> supply, demand;
  for (size_t i = 0; i < p.size(); ++i) {
    const double diff = p[i] - q[i];
    if (diff > 1e-15) supply.push_back({i, diff});
    if (diff < -1e-15) demand.push_back({i, -diff});
  }
  if (supply.empty() || demand.empty()) return 0.0;
  if (supply.size() + demand.size() > max_support) {
    return Status::OutOfRange(
        "GridEmd support too large (" +
        std::to_string(supply.size() + demand.size()) + " > " +
        std::to_string(max_support) + " cells)");
  }

  std::vector<Point> supply_pts(supply.size()), demand_pts(demand.size());
  for (size_t i = 0; i < supply.size(); ++i) {
    supply_pts[i] = domain.CellCenter(level, supply[i].cell);
  }
  for (size_t j = 0; j < demand.size(); ++j) {
    demand_pts[j] = domain.CellCenter(level, demand[j].cell);
  }

  const int s = static_cast<int>(supply.size() + demand.size());
  MinCostFlow flow(s + 2);
  const int source = s;
  const int sink = s + 1;
  for (size_t i = 0; i < supply.size(); ++i) {
    flow.AddEdge(source, static_cast<int>(i), supply[i].amount, 0.0);
  }
  for (size_t j = 0; j < demand.size(); ++j) {
    flow.AddEdge(static_cast<int>(supply.size() + j), sink, demand[j].amount,
                 0.0);
  }
  for (size_t i = 0; i < supply.size(); ++i) {
    for (size_t j = 0; j < demand.size(); ++j) {
      flow.AddEdge(static_cast<int>(i), static_cast<int>(supply.size() + j),
                   std::numeric_limits<double>::max() / 4,
                   domain.Distance(supply_pts[i], demand_pts[j]));
    }
  }
  PRIVHP_ASSIGN_OR_RETURN(MinCostFlow::FlowResult result,
                          flow.Solve(source, sink));
  return result.cost;
}

double TreeWasserstein(const Domain& domain, int level,
                       const std::vector<double>& p,
                       const std::vector<double>& q) {
  PRIVHP_CHECK(p.size() == q.size());
  PRIVHP_CHECK(p.size() == (size_t{1} << level));
  std::vector<double> dp = p;
  std::vector<double> dq = q;
  double total = 0.0;
  for (int l = level; l >= 1; --l) {
    double level_l1 = 0.0;
    for (size_t i = 0; i < dp.size(); ++i) level_l1 += std::abs(dp[i] - dq[i]);
    total += 0.5 * level_l1 * domain.CellDiameter(l);
    // Aggregate to the parent level.
    std::vector<double> np(dp.size() / 2), nq(dq.size() / 2);
    for (size_t i = 0; i < np.size(); ++i) {
      np[i] = dp[2 * i] + dp[2 * i + 1];
      nq[i] = dq[2 * i] + dq[2 * i + 1];
    }
    dp = std::move(np);
    dq = std::move(nq);
  }
  return total;
}

double SlicedW1(const std::vector<Point>& a, const std::vector<Point>& b,
                size_t num_projections, RandomEngine* rng) {
  PRIVHP_CHECK(!a.empty() && !b.empty());
  const size_t d = a[0].size();
  if (d == 1) return Wasserstein1DPoints(a, b);
  double total = 0.0;
  std::vector<double> direction(d);
  std::vector<double> pa(a.size()), pb(b.size());
  for (size_t t = 0; t < num_projections; ++t) {
    double norm = 0.0;
    for (double& c : direction) {
      c = rng->Gaussian();
      norm += c * c;
    }
    norm = std::sqrt(std::max(norm, 1e-30));
    for (double& c : direction) c /= norm;
    for (size_t i = 0; i < a.size(); ++i) {
      double dot = 0.0;
      for (size_t c = 0; c < d; ++c) dot += a[i][c] * direction[c];
      pa[i] = dot;
    }
    for (size_t i = 0; i < b.size(); ++i) {
      double dot = 0.0;
      for (size_t c = 0; c < d; ++c) dot += b[i][c] * direction[c];
      pb[i] = dot;
    }
    total += Wasserstein1DSamples(pa, pb);
  }
  return total / static_cast<double>(num_projections);
}

Result<std::vector<double>> QuantizeToLevel(const Domain& domain,
                                            const std::vector<Point>& points,
                                            int level) {
  if (level < 0 || level > 26) {
    return Status::InvalidArgument("QuantizeToLevel supports levels 0..26");
  }
  if (level > domain.max_level()) {
    return Status::OutOfRange("level exceeds domain max level");
  }
  std::vector<double> dist(size_t{1} << level, 0.0);
  if (points.empty()) return dist;
  const double w = 1.0 / static_cast<double>(points.size());
  for (const Point& x : points) dist[domain.Locate(x, level)] += w;
  return dist;
}

}  // namespace privhp
