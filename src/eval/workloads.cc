#include "eval/workloads.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/macros.h"
#include "domain/hypercube_domain.h"
#include "domain/ipv4_domain.h"

namespace privhp {

std::vector<double> ZipfMasses(size_t m, double exponent) {
  PRIVHP_CHECK(m >= 1);
  std::vector<double> masses(m);
  double total = 0.0;
  for (size_t i = 0; i < m; ++i) {
    masses[i] = std::pow(static_cast<double>(i + 1), -exponent);
    total += masses[i];
  }
  for (double& v : masses) v /= total;
  return masses;
}

namespace {

// Draws an index from a normalized mass vector via its CDF.
size_t SampleIndex(const std::vector<double>& masses, RandomEngine* rng) {
  double u = rng->UniformDouble();
  for (size_t i = 0; i < masses.size(); ++i) {
    u -= masses[i];
    if (u <= 0.0) return i;
  }
  return masses.size() - 1;
}

}  // namespace

std::vector<Point> GenerateUniform(int d, size_t n, RandomEngine* rng) {
  std::vector<Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Point p(d);
    for (double& c : p) c = rng->UniformDouble();
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<Point> GenerateGaussianMixture(int d, size_t n, size_t clusters,
                                           double stddev, RandomEngine* rng) {
  PRIVHP_CHECK(clusters >= 1);
  std::vector<Point> centers;
  centers.reserve(clusters);
  for (size_t c = 0; c < clusters; ++c) {
    Point center(d);
    for (double& x : center) x = rng->UniformDouble(0.15, 0.85);
    centers.push_back(std::move(center));
  }
  std::vector<Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Point& center = centers[rng->UniformInt(clusters)];
    Point p(d);
    for (int c = 0; c < d; ++c) {
      double v = rng->Gaussian(center[c], stddev);
      p[c] = std::clamp(v, 0.0, std::nextafter(1.0, 0.0));
    }
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<Point> GenerateZipfCells(int d, size_t n, int level,
                                     double exponent, RandomEngine* rng) {
  HypercubeDomain domain(d);
  PRIVHP_CHECK(level >= 1 && level <= 24);
  const size_t num_cells = size_t{1} << level;
  std::vector<double> masses = ZipfMasses(num_cells, exponent);
  // Random cell permutation so mass is not spatially sorted.
  std::vector<uint64_t> cells(num_cells);
  std::iota(cells.begin(), cells.end(), 0);
  for (size_t i = num_cells - 1; i > 0; --i) {
    std::swap(cells[i], cells[rng->UniformInt(i + 1)]);
  }
  std::vector<Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t cell = cells[SampleIndex(masses, rng)];
    out.push_back(domain.SampleCell(level, cell, rng));
  }
  return out;
}

std::vector<Point> GenerateSparseAtoms(int d, size_t n, size_t support_size,
                                       RandomEngine* rng) {
  PRIVHP_CHECK(support_size >= 1);
  std::vector<Point> atoms;
  atoms.reserve(support_size);
  for (size_t i = 0; i < support_size; ++i) {
    Point p(d);
    for (double& c : p) c = rng->UniformDouble();
    atoms.push_back(std::move(p));
  }
  const std::vector<double> masses = ZipfMasses(support_size, 1.1);
  std::vector<Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(atoms[SampleIndex(masses, rng)]);
  }
  return out;
}

std::vector<Point> GenerateIpv4Trace(size_t n, size_t heavy_prefixes,
                                     double exponent, RandomEngine* rng) {
  PRIVHP_CHECK(heavy_prefixes >= 1 && heavy_prefixes <= 256);
  // Heavy /8s, then skewed /16s inside each, then uniform hosts.
  std::vector<uint32_t> slash8(heavy_prefixes);
  for (auto& p : slash8) p = static_cast<uint32_t>(rng->UniformInt(256));
  const std::vector<double> p8 = ZipfMasses(heavy_prefixes, exponent);
  const std::vector<double> p16 = ZipfMasses(64, exponent);
  std::vector<uint32_t> slash16_offsets(64);
  for (auto& o : slash16_offsets) o = static_cast<uint32_t>(rng->UniformInt(256));

  std::vector<Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t a = slash8[SampleIndex(p8, rng)];
    const uint32_t b = slash16_offsets[SampleIndex(p16, rng)];
    const uint32_t host = static_cast<uint32_t>(rng->UniformInt(1u << 16));
    out.push_back(Ipv4Domain::FromAddress((a << 24) | (b << 16) | host));
  }
  return out;
}

std::vector<Point> GenerateGeoHotspots(double lat_min, double lat_max,
                                       double lon_min, double lon_max,
                                       size_t n, size_t hotspots,
                                       RandomEngine* rng) {
  PRIVHP_CHECK(hotspots >= 1);
  const double lat_span = lat_max - lat_min;
  const double lon_span = lon_max - lon_min;
  std::vector<Point> centers;
  centers.reserve(hotspots);
  for (size_t h = 0; h < hotspots; ++h) {
    centers.push_back(Point{lat_min + lat_span * rng->UniformDouble(0.2, 0.8),
                            lon_min + lon_span * rng->UniformDouble(0.2, 0.8)});
  }
  const double sigma_lat = 0.02 * lat_span;
  const double sigma_lon = 0.02 * lon_span;
  std::vector<Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng->Bernoulli(0.8)) {
      const Point& c = centers[rng->UniformInt(hotspots)];
      const double lat = std::clamp(rng->Gaussian(c[0], sigma_lat), lat_min,
                                    std::nextafter(lat_max, lat_min));
      const double lon = std::clamp(rng->Gaussian(c[1], sigma_lon), lon_min,
                                    std::nextafter(lon_max, lon_min));
      out.push_back(Point{lat, lon});
    } else {
      out.push_back(
          Point{rng->UniformDouble(lat_min, lat_max),
                rng->UniformDouble(lon_min, lon_max)});
    }
  }
  return out;
}

}  // namespace privhp
