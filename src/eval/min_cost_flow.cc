#include "eval/min_cost_flow.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/macros.h"

namespace privhp {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Flow below this is numerical dust, not transportable mass.
constexpr double kFlowEps = 1e-12;
}  // namespace

MinCostFlow::MinCostFlow(int num_nodes)
    : num_nodes_(num_nodes), graph_(num_nodes) {
  PRIVHP_CHECK(num_nodes >= 1);
}

void MinCostFlow::AddEdge(int u, int v, double capacity, double cost) {
  PRIVHP_CHECK(u >= 0 && u < num_nodes_ && v >= 0 && v < num_nodes_);
  PRIVHP_CHECK(capacity >= 0.0);
  PRIVHP_CHECK(cost >= 0.0);
  graph_[u].push_back(
      Edge{v, capacity, cost, static_cast<int>(graph_[v].size())});
  graph_[v].push_back(
      Edge{u, 0.0, -cost, static_cast<int>(graph_[u].size()) - 1});
}

Result<MinCostFlow::FlowResult> MinCostFlow::Solve(int source, int sink) {
  if (source < 0 || source >= num_nodes_ || sink < 0 || sink >= num_nodes_ ||
      source == sink) {
    return Status::InvalidArgument("bad source/sink");
  }
  FlowResult result;
  std::vector<double> potential(num_nodes_, 0.0);
  std::vector<double> dist(num_nodes_);
  std::vector<int> prev_node(num_nodes_), prev_edge(num_nodes_);

  for (;;) {
    // Dijkstra on reduced costs (non-negative given valid potentials).
    std::fill(dist.begin(), dist.end(), kInf);
    dist[source] = 0.0;
    using Item = std::pair<double, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
    heap.emplace(0.0, source);
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[u] + kFlowEps) continue;
      for (size_t i = 0; i < graph_[u].size(); ++i) {
        const Edge& e = graph_[u][i];
        if (e.capacity <= kFlowEps) continue;
        const double nd = d + e.cost + potential[u] - potential[e.to];
        if (nd < dist[e.to] - kFlowEps) {
          dist[e.to] = nd;
          prev_node[e.to] = u;
          prev_edge[e.to] = static_cast<int>(i);
          heap.emplace(nd, e.to);
        }
      }
    }
    if (dist[sink] == kInf) break;  // no augmenting path remains
    for (int v = 0; v < num_nodes_; ++v) {
      if (dist[v] < kInf) potential[v] += dist[v];
    }
    // Bottleneck along the shortest path.
    double push = kInf;
    for (int v = sink; v != source; v = prev_node[v]) {
      push = std::min(push, graph_[prev_node[v]][prev_edge[v]].capacity);
    }
    if (push <= kFlowEps) break;
    for (int v = sink; v != source; v = prev_node[v]) {
      Edge& e = graph_[prev_node[v]][prev_edge[v]];
      e.capacity -= push;
      graph_[v][e.rev].capacity += push;
      result.cost += push * e.cost;
    }
    result.flow += push;
  }
  return result;
}

}  // namespace privhp
