// The tail statistic ||tail_k^l(X)||_1 (paper Section 5.2): the vector of
// level-l subdomain cardinalities with the top-k coordinates zeroed. This
// is the data-dependent quantity in every utility bound; the harness
// reports it next to measured W1 so EXPERIMENTS.md can compare
// theory-vs-measured per workload.

#ifndef PRIVHP_EVAL_TAIL_H_
#define PRIVHP_EVAL_TAIL_H_

#include <vector>

#include "common/status.h"
#include "domain/domain.h"

namespace privhp {

/// \brief Exact level-\p level cell counts of \p data (dense; level <= 26).
Result<std::vector<double>> LevelCounts(const Domain& domain,
                                        const std::vector<Point>& data,
                                        int level);

/// \brief ||tail_k(v)||_1: sum of all but the k largest entries of \p v.
double TailNorm(std::vector<double> v, size_t k);

/// \brief ||tail_k^level(X)||_1 over \p domain.
Result<double> TailNormAtLevel(const Domain& domain,
                               const std::vector<Point>& data, int level,
                               size_t k);

/// \brief The full approximation-term prediction of Theorem 3:
/// (||tail_k^L||_1 / n + 2^{-j}) * sum_{l=L*+1..L} gamma_{l-1}. Used to
/// print predicted-vs-measured columns.
Result<double> PredictedApproxTerm(const Domain& domain,
                                   const std::vector<Point>& data, int l_star,
                                   int l_max, size_t k, size_t sketch_depth);

}  // namespace privhp

#endif  // PRIVHP_EVAL_TAIL_H_
