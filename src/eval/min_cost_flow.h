// Minimum-cost flow via successive shortest paths with Johnson potentials.
//
// The exact-EMD evaluation (eval/wasserstein.h) reduces optimal transport
// between small discrete measures to min-cost flow on a bipartite network.
// Capacities and costs are doubles (probability masses and metric
// distances); costs must be non-negative.

#ifndef PRIVHP_EVAL_MIN_COST_FLOW_H_
#define PRIVHP_EVAL_MIN_COST_FLOW_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace privhp {

/// \brief Min-cost flow network on n nodes with double capacities/costs.
class MinCostFlow {
 public:
  /// \param num_nodes Node count; ids 0..num_nodes-1.
  explicit MinCostFlow(int num_nodes);

  /// \brief Adds a directed edge u -> v. \p cost must be >= 0.
  void AddEdge(int u, int v, double capacity, double cost);

  /// \brief Result of a flow computation.
  struct FlowResult {
    double flow = 0.0;
    double cost = 0.0;
  };

  /// \brief Sends as much flow as possible from \p source to \p sink at
  /// minimum cost. Runs Dijkstra with potentials per augmentation.
  Result<FlowResult> Solve(int source, int sink);

 private:
  struct Edge {
    int to;
    double capacity;
    double cost;
    int rev;  // index of the reverse edge in graph_[to]
  };

  int num_nodes_;
  std::vector<std::vector<Edge>> graph_;
};

}  // namespace privhp

#endif  // PRIVHP_EVAL_MIN_COST_FLOW_H_
