#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

namespace privhp {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Result<double> RangeQueryError(const Domain& domain,
                               const std::vector<Point>& data,
                               const std::vector<Point>& synthetic,
                               size_t num_queries, int max_query_level,
                               RandomEngine* rng) {
  if (data.empty() || synthetic.empty()) {
    return Status::InvalidArgument("range query error needs non-empty sets");
  }
  if (max_query_level < 1 || max_query_level > domain.max_level()) {
    return Status::InvalidArgument("bad max_query_level");
  }
  const double wd = 1.0 / static_cast<double>(data.size());
  const double ws = 1.0 / static_cast<double>(synthetic.size());
  double total_err = 0.0;
  for (size_t q = 0; q < num_queries; ++q) {
    const int level =
        1 + static_cast<int>(rng->UniformInt(max_query_level));
    const uint64_t cell = rng->UniformInt(uint64_t{1} << level);
    double fd = 0.0, fs = 0.0;
    for (const Point& x : data) {
      if (domain.Locate(x, level) == cell) fd += wd;
    }
    for (const Point& y : synthetic) {
      if (domain.Locate(y, level) == cell) fs += ws;
    }
    total_err += std::abs(fd - fs);
  }
  return total_err / static_cast<double>(num_queries);
}

}  // namespace privhp
