// Synthetic workload generators (DESIGN.md Section 4: the paper has no
// empirical evaluation, so we exercise its bounds with controllable
// streams).
//
// The skew knob matters most: Theorem 3's approximation term is
// ||tail_k||_1 / n, so Zipf-over-cells with exponent s sweeps PrivHP from
// its worst case (uniform mass, s = 0) to its best case (sparse/skewed,
// large s) while everything else stays fixed.

#ifndef PRIVHP_EVAL_WORKLOADS_H_
#define PRIVHP_EVAL_WORKLOADS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "domain/domain.h"

namespace privhp {

/// \brief n uniform points in [0,1]^d — the heavy-tail worst case.
std::vector<Point> GenerateUniform(int d, size_t n, RandomEngine* rng);

/// \brief n points from a truncated Gaussian mixture in [0,1]^d with
/// \p clusters components (centers in [0.15, 0.85]^d) of width \p stddev.
std::vector<Point> GenerateGaussianMixture(int d, size_t n, size_t clusters,
                                           double stddev, RandomEngine* rng);

/// \brief n points distributed over the 2^level cells of [0,1]^d with
/// Zipf(\p exponent) cell masses on a random cell permutation; uniform
/// within the chosen cell. exponent = 0 is uniform-over-cells; larger
/// exponents shrink ||tail_k||_1.
std::vector<Point> GenerateZipfCells(int d, size_t n, int level,
                                     double exponent, RandomEngine* rng);

/// \brief n points supported on \p support_size random atoms of [0,1]^d
/// (Zipf(1.1) atom masses): the sparse regime where ||tail_k|| can hit 0.
std::vector<Point> GenerateSparseAtoms(int d, size_t n, size_t support_size,
                                       RandomEngine* rng);

/// \brief n IPv4 addresses with hierarchical skew: /8 prefixes get
/// Zipf(\p exponent) mass, then /16 inside each /8, then uniform hosts —
/// an idealized flow trace. Points are Ipv4Domain-normalized.
std::vector<Point> GenerateIpv4Trace(size_t n, size_t heavy_prefixes,
                                     double exponent, RandomEngine* rng);

/// \brief n lat/lon points inside a bounding box: \p hotspots Gaussian
/// hotspots (80% of mass) plus uniform background (20%).
std::vector<Point> GenerateGeoHotspots(double lat_min, double lat_max,
                                       double lon_min, double lon_max,
                                       size_t n, size_t hotspots,
                                       RandomEngine* rng);

/// \brief Samples Zipf(\p exponent) masses over \p m items, normalized to
/// sum 1 (exponent >= 0; exponent 0 is uniform). Helper shared by the
/// generators and the skew benches.
std::vector<double> ZipfMasses(size_t m, double exponent);

}  // namespace privhp

#endif  // PRIVHP_EVAL_WORKLOADS_H_
