#include "eval/dp_audit.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace privhp {

Result<DpAuditResult> EstimateEpsilon(
    const std::function<double(RandomEngine*)>& run_on_x,
    const std::function<double(RandomEngine*)>& run_on_x_prime,
    const DpAuditOptions& options, RandomEngine* rng) {
  if (options.trials < 100 || options.bins < 2) {
    return Status::InvalidArgument(
        "dp audit needs >= 100 trials and >= 2 bins");
  }
  std::vector<double> out_x(options.trials), out_xp(options.trials);
  for (size_t t = 0; t < options.trials; ++t) out_x[t] = run_on_x(rng);
  for (size_t t = 0; t < options.trials; ++t) out_xp[t] = run_on_x_prime(rng);

  const auto [lo_x, hi_x] = std::minmax_element(out_x.begin(), out_x.end());
  const auto [lo_p, hi_p] = std::minmax_element(out_xp.begin(), out_xp.end());
  const double lo = std::min(*lo_x, *lo_p);
  const double hi = std::max(*hi_x, *hi_p);
  if (!(hi > lo)) {
    // Degenerate (deterministic) mechanism: identical outputs mean no
    // observable loss; differing constants mean unbounded loss.
    DpAuditResult r;
    r.epsilon_hat = (*lo_x == *lo_p) ? 0.0
                                     : std::numeric_limits<double>::infinity();
    r.bins_used = 1;
    return r;
  }

  std::vector<double> hist_x(options.bins, 0.0), hist_xp(options.bins, 0.0);
  const double inv_width = static_cast<double>(options.bins) / (hi - lo);
  auto bin_of = [&](double v) {
    size_t b = static_cast<size_t>((v - lo) * inv_width);
    return std::min(b, options.bins - 1);
  };
  const double w = 1.0 / static_cast<double>(options.trials);
  for (double v : out_x) hist_x[bin_of(v)] += w;
  for (double v : out_xp) hist_xp[bin_of(v)] += w;

  DpAuditResult result;
  for (size_t b = 0; b < options.bins; ++b) {
    if (hist_x[b] + hist_xp[b] < options.min_mass) continue;
    // Laplace smoothing keeps empty-vs-nonempty bins from reporting
    // infinite loss off a handful of samples.
    const double px = hist_x[b] + w;
    const double pp = hist_xp[b] + w;
    result.epsilon_hat =
        std::max(result.epsilon_hat, std::abs(std::log(px / pp)));
    ++result.bins_used;
  }
  return result;
}

}  // namespace privhp
