// Count Sketch (Charikar-Chen-Farach-Colton): signed updates with a
// median-of-rows estimator. Included as the alternative hash-based private
// sketch the paper cites (Pagh & Thorup's Private CountSketch analysis)
// and used in sketch ablation benches.

#ifndef PRIVHP_SKETCH_COUNT_SKETCH_H_
#define PRIVHP_SKETCH_COUNT_SKETCH_H_

#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "common/status.h"
#include "sketch/frequency_oracle.h"

namespace privhp {

/// \brief Count Sketch over 64-bit keys: unbiased estimates with error
/// ~ ||tail||_2 / sqrt(w) per row, median across rows.
class CountSketch : public FrequencyOracle {
 public:
  CountSketch(size_t width, size_t depth, uint64_t seed);

  static Result<CountSketch> Make(size_t width, size_t depth, uint64_t seed);

  void Update(uint64_t key, double delta) override;
  double Estimate(uint64_t key) const override;
  size_t MemoryBytes() const override;
  std::string Name() const override { return "count-sketch"; }

  /// \brief Oblivious Laplace noise on every cell (private release; the
  /// per-update L1 sensitivity is the number of rows, as for Count-Min).
  void AddLaplaceNoise(RandomEngine* rng, double scale);

  size_t L1Sensitivity() const { return depth_; }
  size_t width() const { return width_; }
  size_t depth() const { return depth_; }

 private:
  size_t width_;
  size_t depth_;
  std::vector<CompactHash> hashes_;
  std::vector<double> cells_;
};

}  // namespace privhp

#endif  // PRIVHP_SKETCH_COUNT_SKETCH_H_
