// (eps, delta)-DP release of a Misra-Gries summary, after Lebeda & Tetek
// ("Better differentially private approximate histograms and heavy
// hitters using the Misra-Gries sketch", PODS 2023) — the counter-based
// private sketch the paper contrasts its hash-based choice with
// (Section 2.1).
//
// The summary is built exactly; the *release* adds Laplace(1/eps) to each
// stored counter and suppresses results below a threshold
// 1 + 2 ln(3/delta)/eps. Suppression is what makes the key *set* safe to
// publish, and is also why this sketch composes poorly with hierarchy
// pruning: mass below the threshold vanishes entirely rather than
// degrading with the tail norm.

#ifndef PRIVHP_SKETCH_PRIVATE_MISRA_GRIES_H_
#define PRIVHP_SKETCH_PRIVATE_MISRA_GRIES_H_

#include <unordered_map>

#include "common/random.h"
#include "common/status.h"
#include "sketch/frequency_oracle.h"
#include "sketch/misra_gries.h"

namespace privhp {

/// \brief The released (private) view of a Misra-Gries summary.
class PrivateMisraGries : public FrequencyOracle {
 public:
  /// \brief Privately releases \p summary.
  /// \param epsilon,delta Privacy parameters (both > 0; delta < 1).
  static Result<PrivateMisraGries> Release(const MisraGries& summary,
                                           double epsilon, double delta,
                                           RandomEngine* rng);

  /// \brief The release is immutable: updates are rejected by design
  /// (update-then-release is the supported workflow), implemented as a
  /// no-op with a debug check.
  void Update(uint64_t key, double delta) override;

  /// \brief Released noisy count, or 0 for suppressed/unseen keys.
  double Estimate(uint64_t key) const override;

  size_t MemoryBytes() const override;
  std::string Name() const override { return "private-misra-gries"; }

  /// \brief The suppression threshold used: 1 + 2 ln(3/delta) / eps.
  double threshold() const { return threshold_; }

  /// \brief Number of keys that survived suppression.
  size_t NumReleased() const { return released_.size(); }

 private:
  PrivateMisraGries(std::unordered_map<uint64_t, double> released,
                    double threshold);

  std::unordered_map<uint64_t, double> released_;
  double threshold_;
};

}  // namespace privhp

#endif  // PRIVHP_SKETCH_PRIVATE_MISRA_GRIES_H_
