#include "sketch/count_min_sketch.h"

#include <algorithm>

#include "common/macros.h"

namespace privhp {

CountMinSketch::CountMinSketch(size_t width, size_t depth, uint64_t seed)
    : width_(width),
      depth_(depth),
      seed_(seed),
      width_pow2_((width & (width - 1)) == 0),
      hashes_(),
      cells_(width * depth, 0.0) {
  PRIVHP_CHECK(width_ >= 1);
  PRIVHP_CHECK(depth_ >= 1);
  hashes_.reserve(depth_);
  for (size_t row = 0; row < depth_; ++row) {
    hashes_.emplace_back(Mix64(seed + 0x9e3779b97f4a7c15ULL * (row + 1)));
  }
}

Result<CountMinSketch> CountMinSketch::Make(size_t width, size_t depth,
                                            uint64_t seed) {
  if (width == 0 || depth == 0) {
    return Status::InvalidArgument(
        "count-min sketch requires width >= 1 and depth >= 1");
  }
  return CountMinSketch(width, depth, seed);
}

void CountMinSketch::Update(uint64_t key, double delta) {
  UpdateBatch(&key, 1, delta);
}

void CountMinSketch::UpdateBatch(const uint64_t* keys, size_t count,
                                 double delta) {
  if (width_pow2_) {
    const uint64_t mask = width_ - 1;
    for (size_t row = 0; row < depth_; ++row) {
      const CompactHash hash = hashes_[row];
      double* cells = cells_.data() + row * width_;
      for (size_t i = 0; i < count; ++i) {
        cells[hash.Hash(keys[i]) & mask] += delta;
      }
    }
    return;
  }
  for (size_t row = 0; row < depth_; ++row) {
    const CompactHash hash = hashes_[row];
    double* cells = cells_.data() + row * width_;
    for (size_t i = 0; i < count; ++i) {
      cells[hash.Bucket(keys[i], width_)] += delta;
    }
  }
}

double CountMinSketch::Estimate(uint64_t key) const {
  double est = cells_[hashes_[0].Bucket(key, width_)];
  for (size_t row = 1; row < depth_; ++row) {
    est = std::min(est,
                   cells_[row * width_ + hashes_[row].Bucket(key, width_)]);
  }
  return est;
}

size_t CountMinSketch::MemoryBytes() const {
  return cells_.size() * sizeof(double) + hashes_.size() * sizeof(CompactHash);
}

void CountMinSketch::AddLaplaceNoise(RandomEngine* rng, double scale) {
  for (double& cell : cells_) cell += rng->Laplace(scale);
}

Status CountMinSketch::Merge(const CountMinSketch& other) {
  if (other.width_ != width_ || other.depth_ != depth_) {
    return Status::InvalidArgument(
        "cannot merge count-min sketches of different shape: " +
        std::to_string(depth_) + "x" + std::to_string(width_) + " vs " +
        std::to_string(other.depth_) + "x" + std::to_string(other.width_));
  }
  if (other.seed_ != seed_) {
    return Status::InvalidArgument(
        "cannot merge count-min sketches with different hash seeds");
  }
  for (size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  return Status::OK();
}

double CountMinSketch::CellValue(size_t row, size_t col) const {
  PRIVHP_DCHECK(row < depth_ && col < width_);
  return cells_[row * width_ + col];
}

double CountMinSketch::RowSum(size_t row) const {
  PRIVHP_DCHECK(row < depth_);
  double sum = 0.0;
  for (size_t col = 0; col < width_; ++col) sum += cells_[row * width_ + col];
  return sum;
}

}  // namespace privhp
