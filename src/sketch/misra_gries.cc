#include "sketch/misra_gries.h"

#include <algorithm>
#include <vector>

#include "common/macros.h"

namespace privhp {

MisraGries::MisraGries(size_t capacity) : capacity_(capacity) {
  PRIVHP_CHECK(capacity_ >= 1);
  counters_.reserve(capacity_ + 1);
}

Result<MisraGries> MisraGries::Make(size_t capacity) {
  if (capacity == 0) {
    return Status::InvalidArgument("misra-gries requires capacity >= 1");
  }
  return MisraGries(capacity);
}

void MisraGries::Update(uint64_t key, double delta) {
  PRIVHP_DCHECK(delta >= 0.0);
  total_ += delta;
  auto it = counters_.find(key);
  if (it != counters_.end()) {
    it->second += delta;
    return;
  }
  if (counters_.size() < capacity_) {
    counters_.emplace(key, delta);
    return;
  }
  // Decrement-all step: subtract the smallest amount that frees a slot.
  double min_count = delta;
  for (const auto& [k, c] : counters_) min_count = std::min(min_count, c);
  if (delta > min_count) {
    // The new key survives with the residual weight.
    std::vector<uint64_t> dead;
    for (auto& [k, c] : counters_) {
      c -= min_count;
      if (c <= 0.0) dead.push_back(k);
    }
    for (uint64_t k : dead) counters_.erase(k);
    if (counters_.size() < capacity_) counters_.emplace(key, delta - min_count);
  } else {
    // delta <= every live counter: the new key is absorbed entirely and all
    // counters shed `delta`.
    std::vector<uint64_t> dead;
    for (auto& [k, c] : counters_) {
      c -= delta;
      if (c <= 0.0) dead.push_back(k);
    }
    for (uint64_t k : dead) counters_.erase(k);
  }
}

double MisraGries::Estimate(uint64_t key) const {
  auto it = counters_.find(key);
  return it == counters_.end() ? 0.0 : it->second;
}

size_t MisraGries::MemoryBytes() const {
  // Hash-map node: key + value + bucket overhead (approximate at 2 words).
  return counters_.size() * (sizeof(uint64_t) + sizeof(double) + 16) +
         sizeof(*this);
}

}  // namespace privhp
