// Exact frequency oracle (hash map of true counts). Not bounded-memory;
// used as the reference in tests, in the proof-pipeline harness (T_X,
// T_exact of Section 7) and for measuring sketch error against truth.

#ifndef PRIVHP_SKETCH_EXACT_ORACLE_H_
#define PRIVHP_SKETCH_EXACT_ORACLE_H_

#include <unordered_map>
#include <vector>

#include "sketch/frequency_oracle.h"

namespace privhp {

/// \brief Exact counts in a hash map.
class ExactOracle : public FrequencyOracle {
 public:
  ExactOracle() = default;

  void Update(uint64_t key, double delta) override;
  double Estimate(uint64_t key) const override;
  size_t MemoryBytes() const override;
  std::string Name() const override { return "exact"; }

  /// \brief Total weight processed.
  double TotalWeight() const { return total_; }

  /// \brief All (key, count) pairs, unordered.
  const std::unordered_map<uint64_t, double>& counts() const {
    return counts_;
  }

  /// \brief Counts sorted descending; `tail_k` is the sum of all entries
  /// after the first k — the ||tail_k||_1 statistic of the paper.
  std::vector<double> SortedCountsDescending() const;

  /// \brief ||tail_k||_1 over this oracle's count vector.
  double TailNorm(size_t k) const;

 private:
  double total_ = 0.0;
  std::unordered_map<uint64_t, double> counts_;
};

}  // namespace privhp

#endif  // PRIVHP_SKETCH_EXACT_ORACLE_H_
