// Common interface for the frequency summaries PrivHP composes with:
// hash-based sketches (Count-Min, Count), counter-based summaries
// (Misra-Gries) and the exact reference oracle used in tests and in the
// proof-pipeline harness.

#ifndef PRIVHP_SKETCH_FREQUENCY_ORACLE_H_
#define PRIVHP_SKETCH_FREQUENCY_ORACLE_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace privhp {

/// \brief Point-query frequency summary over 64-bit keys.
class FrequencyOracle {
 public:
  virtual ~FrequencyOracle() = default;

  /// \brief Adds \p delta to the count of \p key.
  virtual void Update(uint64_t key, double delta) = 0;

  /// \brief Estimated count of \p key.
  virtual double Estimate(uint64_t key) const = 0;

  /// \brief Total bytes held by the summary (counters + hash tables).
  virtual size_t MemoryBytes() const = 0;

  /// \brief Summary name for reports.
  virtual std::string Name() const = 0;
};

}  // namespace privhp

#endif  // PRIVHP_SKETCH_FREQUENCY_ORACLE_H_
