#include "sketch/exact_oracle.h"

#include <algorithm>

namespace privhp {

void ExactOracle::Update(uint64_t key, double delta) {
  total_ += delta;
  counts_[key] += delta;
}

double ExactOracle::Estimate(uint64_t key) const {
  auto it = counts_.find(key);
  return it == counts_.end() ? 0.0 : it->second;
}

size_t ExactOracle::MemoryBytes() const {
  return counts_.size() * (sizeof(uint64_t) + sizeof(double) + 16) +
         sizeof(*this);
}

std::vector<double> ExactOracle::SortedCountsDescending() const {
  std::vector<double> values;
  values.reserve(counts_.size());
  for (const auto& [key, count] : counts_) values.push_back(count);
  std::sort(values.begin(), values.end(), std::greater<double>());
  return values;
}

double ExactOracle::TailNorm(size_t k) const {
  const std::vector<double> sorted = SortedCountsDescending();
  double tail = 0.0;
  for (size_t i = k; i < sorted.size(); ++i) tail += sorted[i];
  return tail;
}

}  // namespace privhp
