// Private release of linear sketches (paper Section 3.4).
//
// A linear sketch C satisfies C(X) - C(X') = C(X - X') on neighboring
// inputs, so one unit update has L1 sensitivity equal to the number of
// rows j. Adding i.i.d. Laplace(j/eps) to every cell makes the released
// table eps-DP (Lemma 1), and any query against the noisy table is
// private by post-processing (Lemma 2).
//
// Because the noise is data-independent it can be applied at any point:
// up-front (Make — the one-shard streaming release of Algorithm 1) or
// after accumulation (Privatize — the sharded build path, where plain
// mergeable sketches are combined exactly and privatized exactly once at
// PrivHPBuilder::Finish). Both yield the same output distribution.

#ifndef PRIVHP_SKETCH_PRIVATE_SKETCH_H_
#define PRIVHP_SKETCH_PRIVATE_SKETCH_H_

#include <memory>

#include "common/random.h"
#include "common/status.h"
#include "sketch/count_min_sketch.h"
#include "sketch/frequency_oracle.h"

namespace privhp {

/// \brief An eps-DP Count-Min sketch: Count-Min with oblivious
/// Laplace(j/eps) noise added to every cell.
///
/// This is `sketch_l` in Algorithm 1 (Line 8), with noise distribution
/// D_l = Laplace^{w x j}(j / sigma_l) from Theorem 2 (Equation 3).
class PrivateCountMinSketch : public FrequencyOracle {
 public:
  /// \brief Builds an empty sketch and privatizes it immediately.
  /// \param width,depth Sketch dimensions (w, j).
  /// \param epsilon Privacy budget of this sketch (sigma_l). epsilon <= 0
  ///        disables noise (used by non-private ablations only).
  /// \param seed Hash seed.
  /// \param rng Noise source.
  static Result<PrivateCountMinSketch> Make(size_t width, size_t depth,
                                            double epsilon, uint64_t seed,
                                            RandomEngine* rng);

  /// \brief Privatizes an accumulated plain sketch: adds Laplace(j/eps)
  /// per cell (row-major) and takes ownership. The sharded build path.
  static Result<PrivateCountMinSketch> Privatize(CountMinSketch base,
                                                 double epsilon,
                                                 RandomEngine* rng);

  void Update(uint64_t key, double delta) override;
  double Estimate(uint64_t key) const override;
  size_t MemoryBytes() const override;
  std::string Name() const override { return "private-count-min"; }

  /// \brief The privacy parameter this sketch consumed.
  double epsilon() const { return epsilon_; }

  /// \brief Noise scale applied per cell: depth / epsilon.
  double NoiseScale() const;

  const CountMinSketch& base() const { return base_; }

 private:
  PrivateCountMinSketch(CountMinSketch base, double epsilon);

  CountMinSketch base_;
  double epsilon_;
};

}  // namespace privhp

#endif  // PRIVHP_SKETCH_PRIVATE_SKETCH_H_
