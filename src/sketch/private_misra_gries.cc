#include "sketch/private_misra_gries.h"

#include <cmath>

#include "common/macros.h"

namespace privhp {

PrivateMisraGries::PrivateMisraGries(
    std::unordered_map<uint64_t, double> released, double threshold)
    : released_(std::move(released)), threshold_(threshold) {}

Result<PrivateMisraGries> PrivateMisraGries::Release(
    const MisraGries& summary, double epsilon, double delta,
    RandomEngine* rng) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (!(delta > 0.0 && delta < 1.0)) {
    return Status::InvalidArgument("delta must lie in (0, 1)");
  }
  if (rng == nullptr) {
    return Status::InvalidArgument("noise source must not be null");
  }
  const double threshold = 1.0 + 2.0 * std::log(3.0 / delta) / epsilon;
  std::unordered_map<uint64_t, double> released;
  // Lebeda-Tetek: one shared offset plus per-key noise keeps the
  // sensitivity of the stored-counter vector at 1 even though a single
  // element can shift every MG counter by the decrement step.
  const double shared = rng->Laplace(1.0 / epsilon);
  for (const auto& [key, count] : summary.counts()) {
    const double noisy = count + shared + rng->Laplace(1.0 / epsilon);
    if (noisy >= threshold) released.emplace(key, noisy);
  }
  return PrivateMisraGries(std::move(released), threshold);
}

void PrivateMisraGries::Update(uint64_t key, double delta) {
  (void)key;
  (void)delta;
  PRIVHP_DCHECK(false && "PrivateMisraGries is a released artifact");
}

double PrivateMisraGries::Estimate(uint64_t key) const {
  auto it = released_.find(key);
  return it == released_.end() ? 0.0 : it->second;
}

size_t PrivateMisraGries::MemoryBytes() const {
  return released_.size() * (sizeof(uint64_t) + sizeof(double) + 16) +
         sizeof(*this);
}

}  // namespace privhp
