#include "sketch/private_sketch.h"

#include <utility>

#include "common/macros.h"

namespace privhp {

PrivateCountMinSketch::PrivateCountMinSketch(CountMinSketch base,
                                             double epsilon)
    : base_(std::move(base)), epsilon_(epsilon) {}

Result<PrivateCountMinSketch> PrivateCountMinSketch::Make(
    size_t width, size_t depth, double epsilon, uint64_t seed,
    RandomEngine* rng) {
  PRIVHP_ASSIGN_OR_RETURN(CountMinSketch base,
                          CountMinSketch::Make(width, depth, seed));
  return Privatize(std::move(base), epsilon, rng);
}

Result<PrivateCountMinSketch> PrivateCountMinSketch::Privatize(
    CountMinSketch base, double epsilon, RandomEngine* rng) {
  if (epsilon > 0.0 && rng == nullptr) {
    return Status::InvalidArgument(
        "private count-min sketch with epsilon > 0 requires a noise source");
  }
  PrivateCountMinSketch sketch(std::move(base), epsilon);
  if (epsilon > 0.0) {
    sketch.base_.AddLaplaceNoise(rng, sketch.NoiseScale());
  }
  return sketch;
}

void PrivateCountMinSketch::Update(uint64_t key, double delta) {
  base_.Update(key, delta);
}

double PrivateCountMinSketch::Estimate(uint64_t key) const {
  return base_.Estimate(key);
}

size_t PrivateCountMinSketch::MemoryBytes() const {
  return base_.MemoryBytes() + sizeof(epsilon_);
}

double PrivateCountMinSketch::NoiseScale() const {
  PRIVHP_DCHECK(epsilon_ > 0.0);
  return static_cast<double>(base_.depth()) / epsilon_;
}

}  // namespace privhp
