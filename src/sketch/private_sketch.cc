#include "sketch/private_sketch.h"

#include "common/macros.h"

namespace privhp {

PrivateCountMinSketch::PrivateCountMinSketch(size_t width, size_t depth,
                                             double epsilon, uint64_t seed,
                                             RandomEngine* rng)
    : base_(width, depth, seed), epsilon_(epsilon) {
  if (epsilon_ > 0.0) {
    PRIVHP_CHECK(rng != nullptr);
    base_.AddLaplaceNoise(rng, NoiseScale());
  }
}

Result<PrivateCountMinSketch> PrivateCountMinSketch::Make(
    size_t width, size_t depth, double epsilon, uint64_t seed,
    RandomEngine* rng) {
  if (width == 0 || depth == 0) {
    return Status::InvalidArgument(
        "private count-min sketch requires width >= 1 and depth >= 1");
  }
  if (epsilon > 0.0 && rng == nullptr) {
    return Status::InvalidArgument(
        "private count-min sketch with epsilon > 0 requires a noise source");
  }
  return PrivateCountMinSketch(width, depth, epsilon, seed, rng);
}

void PrivateCountMinSketch::Update(uint64_t key, double delta) {
  base_.Update(key, delta);
}

double PrivateCountMinSketch::Estimate(uint64_t key) const {
  return base_.Estimate(key);
}

size_t PrivateCountMinSketch::MemoryBytes() const {
  return base_.MemoryBytes() + sizeof(epsilon_);
}

double PrivateCountMinSketch::NoiseScale() const {
  PRIVHP_DCHECK(epsilon_ > 0.0);
  return static_cast<double>(base_.depth()) / epsilon_;
}

}  // namespace privhp
