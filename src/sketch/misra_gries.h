// Misra-Gries heavy-hitter summary: the counter-based sketch used by the
// Biswas et al. hierarchical-heavy-hitter baseline the paper compares its
// sketch choice against (Section 2.1). Estimates undershoot by at most
// total/(k+1); included for the sketch-comparison bench.

#ifndef PRIVHP_SKETCH_MISRA_GRIES_H_
#define PRIVHP_SKETCH_MISRA_GRIES_H_

#include <unordered_map>

#include "common/status.h"
#include "sketch/frequency_oracle.h"

namespace privhp {

/// \brief Misra-Gries summary with \p capacity counters over unit updates.
///
/// Update() requires non-negative deltas (decrement semantics are
/// undefined for Misra-Gries); fractional positive weights are supported.
class MisraGries : public FrequencyOracle {
 public:
  explicit MisraGries(size_t capacity);

  static Result<MisraGries> Make(size_t capacity);

  void Update(uint64_t key, double delta) override;
  double Estimate(uint64_t key) const override;
  size_t MemoryBytes() const override;
  std::string Name() const override { return "misra-gries"; }

  /// \brief Total weight processed; the estimation undershoot is at most
  /// TotalWeight() / (capacity + 1).
  double TotalWeight() const { return total_; }

  /// \brief Number of live counters (<= capacity).
  size_t NumCounters() const { return counters_.size(); }

  /// \brief The stored (key, counter) pairs — what a private release
  /// post-processes.
  const std::unordered_map<uint64_t, double>& counts() const {
    return counters_;
  }

 private:
  size_t capacity_;
  double total_ = 0.0;
  std::unordered_map<uint64_t, double> counters_;
};

}  // namespace privhp

#endif  // PRIVHP_SKETCH_MISRA_GRIES_H_
