// Count-Min sketch (Cormode & Muthukrishnan), the paper's sketching
// primitive (Section 3.3, Figure 1).
//
// A j x w matrix of counters; row i hashes keys into one of w buckets and
// the point estimate is the minimum across rows. Lemma 4 (with width 2w):
//   E[est - true] <= (||tail_w(v)||_1 + 2^{-j+1} ||v||_1) / w.
//
// For private release (Section 3.4) the sketch is linear with per-update
// L1 sensitivity j, so adding i.i.d. Laplace(j/eps) to every cell at
// initialization makes the released table eps-DP; see
// sketch/private_sketch.h.

#ifndef PRIVHP_SKETCH_COUNT_MIN_SKETCH_H_
#define PRIVHP_SKETCH_COUNT_MIN_SKETCH_H_

#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "common/status.h"
#include "sketch/frequency_oracle.h"

namespace privhp {

/// \brief Count-Min sketch over 64-bit keys with double-valued counters.
class CountMinSketch : public FrequencyOracle {
 public:
  /// \param width Buckets per row (w).
  /// \param depth Rows (j).
  /// \param seed Seed for the per-row hash functions.
  CountMinSketch(size_t width, size_t depth, uint64_t seed);

  /// \brief Validating factory.
  static Result<CountMinSketch> Make(size_t width, size_t depth,
                                     uint64_t seed);

  void Update(uint64_t key, double delta) override;

  /// \brief Adds \p delta for each of \p count keys, one hash row at a
  /// time: the inner loop hashes a contiguous key run and writes into one
  /// row of `cells_`, which keeps the working set to a single row and
  /// lets the compiler vectorize the hashing. For integer-valued deltas
  /// (the ingest path's +1.0) the result is bit-identical to calling
  /// Update() per key — whole-number double sums are exact, so the
  /// row-major reordering cannot perturb the cells.
  void UpdateBatch(const uint64_t* keys, size_t count, double delta);

  double Estimate(uint64_t key) const override;
  size_t MemoryBytes() const override;
  std::string Name() const override { return "count-min"; }

  /// \brief Adds an independent draw from Laplace(\p scale) to every cell
  /// (oblivious noise; used for private release, Section 3.4).
  void AddLaplaceNoise(RandomEngine* rng, double scale);

  /// \brief Element-wise adds \p other's cells into this sketch.
  ///
  /// Count-Min is linear: sketch(X) + sketch(Y) = sketch(X ++ Y) when both
  /// sides hash with the same family, so merging shard sketches is exact.
  /// Requires identical width, depth and hash seed.
  Status Merge(const CountMinSketch& other);

  /// \brief Raw cell value (row-major); for tests and audits.
  double CellValue(size_t row, size_t col) const;

  /// \brief Sum of one row's counters (== total updates + that row's noise).
  double RowSum(size_t row) const;

  /// \brief L1 sensitivity of a single unit update: the number of rows.
  size_t L1Sensitivity() const { return depth_; }

  size_t width() const { return width_; }
  size_t depth() const { return depth_; }

  /// \brief The hash-family seed; sketches merge only when it matches.
  uint64_t seed() const { return seed_; }

 private:
  size_t width_;
  size_t depth_;
  uint64_t seed_;
  // True when width_ is a power of two: bucket reduction is then
  // `hash & (width_ - 1)`, which equals `hash % width_` bit-for-bit but
  // costs one AND instead of a 64-bit divide — the ingest hot path does
  // depth_ reductions per key per level.
  bool width_pow2_;
  std::vector<CompactHash> hashes_;
  std::vector<double> cells_;  // row-major depth_ x width_
};

}  // namespace privhp

#endif  // PRIVHP_SKETCH_COUNT_MIN_SKETCH_H_
