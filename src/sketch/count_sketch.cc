#include "sketch/count_sketch.h"

#include <algorithm>

#include "common/macros.h"
#include "common/random.h"

namespace privhp {

CountSketch::CountSketch(size_t width, size_t depth, uint64_t seed)
    : width_(width),
      depth_(depth),
      hashes_(),
      cells_(width * depth, 0.0) {
  PRIVHP_CHECK(width_ >= 1);
  PRIVHP_CHECK(depth_ >= 1);
  hashes_.reserve(depth_);
  for (size_t row = 0; row < depth_; ++row) {
    hashes_.emplace_back(Mix64(seed + 0x9e3779b97f4a7c15ULL * (row + 1)));
  }
}

Result<CountSketch> CountSketch::Make(size_t width, size_t depth,
                                      uint64_t seed) {
  if (width == 0 || depth == 0) {
    return Status::InvalidArgument(
        "count sketch requires width >= 1 and depth >= 1");
  }
  return CountSketch(width, depth, seed);
}

void CountSketch::Update(uint64_t key, double delta) {
  for (size_t row = 0; row < depth_; ++row) {
    const auto& h = hashes_[row];
    cells_[row * width_ + h.Bucket(key, width_)] +=
        delta * static_cast<double>(SignBit(h, key));
  }
}

double CountSketch::Estimate(uint64_t key) const {
  std::vector<double> row_estimates(depth_);
  for (size_t row = 0; row < depth_; ++row) {
    const auto& h = hashes_[row];
    row_estimates[row] = cells_[row * width_ + h.Bucket(key, width_)] *
                         static_cast<double>(SignBit(h, key));
  }
  auto mid = row_estimates.begin() + depth_ / 2;
  std::nth_element(row_estimates.begin(), mid, row_estimates.end());
  if (depth_ % 2 == 1) return *mid;
  const double upper = *mid;
  const double lower =
      *std::max_element(row_estimates.begin(), row_estimates.begin() + depth_ / 2);
  return 0.5 * (lower + upper);
}

size_t CountSketch::MemoryBytes() const {
  return cells_.size() * sizeof(double) + hashes_.size() * sizeof(CompactHash);
}

void CountSketch::AddLaplaceNoise(RandomEngine* rng, double scale) {
  for (double& cell : cells_) cell += rng->Laplace(scale);
}

}  // namespace privhp
