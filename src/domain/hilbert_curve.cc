#include "domain/hilbert_curve.h"

#include <cmath>

#include "common/macros.h"

namespace privhp {

HilbertCurve2D::HilbertCurve2D(int order) : order_(order) {
  PRIVHP_CHECK(order >= 1 && order <= 31);
}

namespace {
// Rotates/flips quadrant coordinates (classic Hilbert transform step).
inline void Rotate(uint32_t n, uint32_t* x, uint32_t* y, uint32_t rx,
                   uint32_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      *x = n - 1 - *x;
      *y = n - 1 - *y;
    }
    const uint32_t t = *x;
    *x = *y;
    *y = t;
  }
}
}  // namespace

uint64_t HilbertCurve2D::Index(uint32_t x, uint32_t y) const {
  const uint32_t n = uint32_t{1} << order_;
  PRIVHP_DCHECK(x < n && y < n);
  uint64_t d = 0;
  for (uint32_t s = n / 2; s > 0; s /= 2) {
    const uint32_t rx = (x & s) > 0 ? 1 : 0;
    const uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += static_cast<uint64_t>(s) * s * ((3 * rx) ^ ry);
    Rotate(n, &x, &y, rx, ry);
  }
  return d;
}

std::pair<uint32_t, uint32_t> HilbertCurve2D::Cell(uint64_t d) const {
  const uint32_t n = uint32_t{1} << order_;
  PRIVHP_DCHECK(d < num_cells());
  uint32_t x = 0, y = 0;
  uint64_t t = d;
  for (uint32_t s = 1; s < n; s *= 2) {
    const uint32_t rx = static_cast<uint32_t>((t / 2) & 1);
    const uint32_t ry = static_cast<uint32_t>((t ^ rx) & 1);
    Rotate(s, &x, &y, rx, ry);
    x += s * rx;
    y += s * ry;
    t /= 4;
  }
  return {x, y};
}

uint64_t HilbertCurve2D::IndexOfPoint(double x, double y) const {
  const double n = std::ldexp(1.0, order_);
  auto quantize = [&](double v) -> uint32_t {
    double q = v * n;
    if (q < 0.0) q = 0.0;
    if (q >= n) q = n - 1.0;
    return static_cast<uint32_t>(q);
  };
  return Index(quantize(x), quantize(y));
}

std::pair<double, double> HilbertCurve2D::PointAt(uint64_t d) const {
  const auto [cx, cy] = Cell(d);
  const double inv = std::ldexp(1.0, -order_);
  return {(cx + 0.5) * inv, (cy + 0.5) * inv};
}

}  // namespace privhp
