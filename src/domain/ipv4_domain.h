// The IPv4 address space as a metric domain — one of the two application
// domains the paper motivates ("geographic coordinates or the IPv4
// address space", Section 1.2).
//
// Addresses are ordered as 32-bit integers; the level-l cells are exactly
// the /l CIDR prefixes, so the hierarchical decomposition coincides with
// the routing hierarchy and the generator's leaves are subnets. The metric
// is the normalized numeric distance |a - b| / 2^32, under which a /l
// prefix has diameter 2^-l, matching the dyadic interval case.

#ifndef PRIVHP_DOMAIN_IPV4_DOMAIN_H_
#define PRIVHP_DOMAIN_IPV4_DOMAIN_H_

#include <cstdint>
#include <string>

#include "domain/domain.h"

namespace privhp {

/// \brief Omega = {0, ..., 2^32 - 1} (IPv4 addresses) with /l-prefix cells.
class Ipv4Domain : public Domain {
 public:
  Ipv4Domain() = default;

  int dimension() const override { return 1; }
  int max_level() const override { return 32; }
  std::string Name() const override { return "ipv4"; }

  bool Contains(const Point& x) const override;
  uint64_t Locate(const Point& x, int level) const override;
  double CellDiameter(int level) const override;
  double LevelDiameterSum(int level) const override;
  Point SampleCell(int level, uint64_t index,
                   RandomEngine* rng) const override;
  Point CellCenter(int level, uint64_t index) const override;
  double Distance(const Point& a, const Point& b) const override;

  /// \brief Wraps a raw address into a Point (normalized to [0,1)).
  static Point FromAddress(uint32_t address);

  /// \brief Recovers the address encoded in \p x.
  static uint32_t ToAddress(const Point& x);

  /// \brief Parses dotted-quad notation ("10.0.0.1").
  static Result<uint32_t> ParseAddress(const std::string& dotted);

  /// \brief Formats an address as dotted-quad.
  static std::string FormatAddress(uint32_t address);

  /// \brief Formats a level-l cell as CIDR notation ("10.0.0.0/8").
  static std::string FormatCidr(int level, uint64_t index);
};

}  // namespace privhp

#endif  // PRIVHP_DOMAIN_IPV4_DOMAIN_H_
