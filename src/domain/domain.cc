#include "domain/domain.h"

#include "common/macros.h"

namespace privhp {

Status Domain::ValidatePoint(const Point& x) const {
  if (static_cast<int>(x.size()) != dimension()) {
    return Status::InvalidArgument(
        "point has " + std::to_string(x.size()) + " coordinates, domain '" +
        Name() + "' expects " + std::to_string(dimension()));
  }
  if (!Contains(x)) {
    return Status::OutOfRange("point lies outside domain '" + Name() + "'");
  }
  return Status::OK();
}

Status Domain::ValidateBatch(const Point* points, size_t count) const {
  for (size_t i = 0; i < count; ++i) {
    const Status valid = ValidatePoint(points[i]);
    if (!valid.ok()) {
      return Status(valid.code(), "batch point " + std::to_string(i) +
                                      ": " + valid.message());
    }
  }
  return Status::OK();
}

Status Domain::ValidateBatch(const double* flat, int dim,
                             size_t count) const {
  if (count == 0) return Status::OK();
  // One scratch point reused across rows; ValidatePoint supplies the
  // exact per-point status text the Point-array form produces.
  Point x(static_cast<size_t>(dim));
  for (size_t i = 0; i < count; ++i) {
    const double* row = flat + i * static_cast<size_t>(dim);
    x.assign(row, row + dim);
    const Status valid = ValidatePoint(x);
    if (!valid.ok()) {
      return Status(valid.code(), "batch point " + std::to_string(i) +
                                      ": " + valid.message());
    }
  }
  return Status::OK();
}

bool Domain::CellBoundsFor(int level, uint64_t index, double* lo,
                           double* hi) const {
  (void)level;
  (void)index;
  (void)lo;
  (void)hi;
  return false;
}

Point Domain::CellCenter(int level, uint64_t index) const {
  RandomEngine rng(0x9e3779b97f4a7c15ULL ^ (index * 2654435761u + level));
  constexpr int kDraws = 32;
  Point acc;
  for (int i = 0; i < kDraws; ++i) {
    Point p = SampleCell(level, index, &rng);
    if (acc.empty()) {
      acc = std::move(p);
    } else {
      for (size_t c = 0; c < acc.size(); ++c) acc[c] += p[c];
    }
  }
  for (double& c : acc) c /= kDraws;
  return acc;
}

void Domain::LocatePath(const Point& x, int max,
                        std::vector<uint64_t>* out) const {
  PRIVHP_DCHECK(max <= max_level());
  out->resize(max + 1);
  const uint64_t deepest = Locate(x, max);
  for (int l = 0; l <= max; ++l) (*out)[l] = deepest >> (max - l);
}

void Domain::LocatePathBatch(const Point* points, size_t count, int max,
                             uint64_t* out) const {
  PRIVHP_DCHECK(max <= max_level());
  for (size_t i = 0; i < count; ++i) {
    const uint64_t deepest = Locate(points[i], max);
    for (int l = 0; l <= max; ++l) {
      out[static_cast<size_t>(l) * count + i] = deepest >> (max - l);
    }
  }
}

void Domain::LocatePathBatch(const double* flat, int dim, size_t count,
                             int max, uint64_t* out) const {
  PRIVHP_DCHECK(max <= max_level());
  PRIVHP_DCHECK(dim == dimension());
  Point x(static_cast<size_t>(dim));
  for (size_t i = 0; i < count; ++i) {
    const double* row = flat + i * static_cast<size_t>(dim);
    x.assign(row, row + dim);
    const uint64_t deepest = Locate(x, max);
    for (int l = 0; l <= max; ++l) {
      out[static_cast<size_t>(l) * count + i] = deepest >> (max - l);
    }
  }
}

}  // namespace privhp
