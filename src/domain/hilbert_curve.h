// 2-D Hilbert space-filling curve.
//
// Used by the SRRW baseline to lift a one-dimensional private-measure
// construction to [0,1]^2: the Hilbert order preserves locality (points
// close on the curve are close in the square, with the curve's standard
// 1-Lipschitz-up-to-constants embedding quality), so W1 error transported
// along the curve translates to W1 error in the square up to constants.

#ifndef PRIVHP_DOMAIN_HILBERT_CURVE_H_
#define PRIVHP_DOMAIN_HILBERT_CURVE_H_

#include <cstdint>
#include <utility>

namespace privhp {

/// \brief Order-`order` Hilbert curve on the 2^order x 2^order grid.
class HilbertCurve2D {
 public:
  /// \param order Number of bits per coordinate (1..31).
  explicit HilbertCurve2D(int order);

  /// \brief Curve index of grid cell (x, y); result in [0, 4^order).
  uint64_t Index(uint32_t x, uint32_t y) const;

  /// \brief Grid cell at curve position \p d.
  std::pair<uint32_t, uint32_t> Cell(uint64_t d) const;

  /// \brief Curve index of a point in [0,1)^2 (quantized to the grid).
  uint64_t IndexOfPoint(double x, double y) const;

  /// \brief Center of the grid cell at curve position \p d, in [0,1)^2.
  std::pair<double, double> PointAt(uint64_t d) const;

  int order() const { return order_; }
  uint64_t num_cells() const { return uint64_t{1} << (2 * order_); }

 private:
  int order_;
};

}  // namespace privhp

#endif  // PRIVHP_DOMAIN_HILBERT_CURVE_H_
