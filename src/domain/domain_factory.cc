#include "domain/domain_factory.h"

#include <cstdlib>

#include "domain/hypercube_domain.h"
#include "domain/interval_domain.h"
#include "domain/ipv4_domain.h"

namespace privhp {

namespace {

constexpr char kHypercubePrefix[] = "hypercube[0,1]^";

Status DimensionMismatch(const std::string& name, int expected,
                         int dimension) {
  return Status::InvalidArgument(
      "domain '" + name + "' has dimension " + std::to_string(expected) +
      ", but the artifact declares " + std::to_string(dimension));
}

}  // namespace

Result<std::unique_ptr<Domain>> MakeDomainByName(const std::string& name,
                                                 int dimension) {
  if (dimension < 1) {
    return Status::InvalidArgument("dimension must be >= 1, got " +
                                   std::to_string(dimension));
  }
  if (name == "interval[0,1]") {
    if (dimension != 1) return DimensionMismatch(name, 1, dimension);
    return std::unique_ptr<Domain>(new IntervalDomain());
  }
  if (name == "ipv4") {
    if (dimension != 1) return DimensionMismatch(name, 1, dimension);
    return std::unique_ptr<Domain>(new Ipv4Domain());
  }
  if (name.rfind(kHypercubePrefix, 0) == 0) {
    const std::string suffix = name.substr(sizeof(kHypercubePrefix) - 1);
    char* end = nullptr;
    const long d = std::strtol(suffix.c_str(), &end, 10);
    if (end == suffix.c_str() || *end != '\0' || d < 1) {
      return Status::InvalidArgument("malformed hypercube domain name: " +
                                     name);
    }
    if (d != dimension) {
      return DimensionMismatch(name, static_cast<int>(d), dimension);
    }
    return std::unique_ptr<Domain>(new HypercubeDomain(dimension));
  }
  return Status::NotImplemented(
      "domain '" + name +
      "' is not reconstructible from its name; load the artifact with an "
      "explicitly constructed domain instead");
}

}  // namespace privhp
