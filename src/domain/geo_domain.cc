#include "domain/geo_domain.h"

namespace privhp {

GeoDomain::GeoDomain(double lat_min, double lat_max, double lon_min,
                     double lon_max, int max_level)
    : BoxDomain("geo", {lat_min, lon_min}, {lat_max, lon_max}, max_level) {}

}  // namespace privhp
