#include "domain/point_batch.h"

#include <cstring>

#include "common/macros.h"

namespace privhp {

void PointBatch::Reset(int dim) {
  PRIVHP_CHECK(dim >= 1);
  dim_ = dim;
  data_.clear();
}

double* PointBatch::AppendRow() {
  PRIVHP_DCHECK(dim_ >= 1);
  data_.resize(data_.size() + Stride());
  return data_.data() + (data_.size() - Stride());
}

double* PointBatch::AppendRows(size_t count) {
  PRIVHP_DCHECK(dim_ >= 1);
  const size_t old = data_.size();
  data_.resize(old + count * Stride());
  return data_.data() + old;
}

void PointBatch::AppendFlat(const double* flat, size_t count) {
  PRIVHP_DCHECK(dim_ >= 1);
  if (count == 0) return;
  data_.insert(data_.end(), flat, flat + count * Stride());
}

void PointBatch::AppendPoint(const Point& p) {
  PRIVHP_DCHECK(static_cast<size_t>(dim_) == p.size());
  data_.insert(data_.end(), p.begin(), p.end());
}

void PointBatch::AppendPoints(const std::vector<Point>& points) {
  Reserve(size() + points.size());
  for (const Point& p : points) AppendPoint(p);
}

Point PointBatch::At(size_t i) const {
  PRIVHP_DCHECK(i < size());
  const double* r = row(i);
  return Point(r, r + Stride());
}

void PointBatch::CopyTo(std::vector<Point>* out) const {
  const size_t n = size();
  out->reserve(out->size() + n);
  for (size_t i = 0; i < n; ++i) out->push_back(At(i));
}

std::vector<Point> PointBatch::ToPoints() const {
  std::vector<Point> out;
  CopyTo(&out);
  return out;
}

PointBatch PointBatch::FromPoints(const std::vector<Point>& points, int dim) {
  if (dim < 0) {
    dim = points.empty() ? 0 : static_cast<int>(points.front().size());
  }
  PointBatch batch;
  if (dim >= 1) {
    batch.Reset(dim);
    batch.AppendPoints(points);
  }
  return batch;
}

}  // namespace privhp
