// Reconstructing a Domain from its serialized identity.
//
// A released tree file records the domain name and dimension (format v2);
// the service layer's artifact registry uses this factory to rebuild the
// matching domain when loading an artifact by path, so a serving process
// needs no out-of-band knowledge of how an artifact was built. Only
// domains whose geometry is fully determined by (name, dimension) are
// constructible — parameterized domains (GeoDomain bounding boxes, custom
// BoxDomains) must be supplied by the caller instead.

#ifndef PRIVHP_DOMAIN_DOMAIN_FACTORY_H_
#define PRIVHP_DOMAIN_DOMAIN_FACTORY_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "domain/domain.h"

namespace privhp {

/// \brief Builds the domain serialized as \p name with \p dimension.
///
/// Supported: "interval[0,1]" (d = 1), "hypercube[0,1]^D" (D >= 1, must
/// equal \p dimension), "ipv4" (d = 1). Anything else returns
/// NotImplemented; a name/dimension mismatch returns InvalidArgument.
Result<std::unique_ptr<Domain>> MakeDomainByName(const std::string& name,
                                                 int dimension);

}  // namespace privhp

#endif  // PRIVHP_DOMAIN_DOMAIN_FACTORY_H_
