#include "domain/ipv4_domain.h"

#include <cmath>
#include <cstdio>

#include "common/macros.h"

namespace privhp {

namespace {
constexpr double kScale = 4294967296.0;  // 2^32
}  // namespace

bool Ipv4Domain::Contains(const Point& x) const {
  return x.size() == 1 && x[0] >= 0.0 && x[0] < 1.0;
}

uint64_t Ipv4Domain::Locate(const Point& x, int level) const {
  PRIVHP_DCHECK(level >= 0 && level <= 32);
  PRIVHP_DCHECK(Contains(x));
  const uint32_t address = ToAddress(x);
  if (level == 0) return 0;
  return static_cast<uint64_t>(address) >> (32 - level);
}

double Ipv4Domain::CellDiameter(int level) const {
  return std::ldexp(1.0, -level);
}

double Ipv4Domain::LevelDiameterSum(int level) const {
  (void)level;
  return 1.0;  // 2^l cells of diameter 2^-l.
}

Point Ipv4Domain::SampleCell(int level, uint64_t index,
                             RandomEngine* rng) const {
  PRIVHP_DCHECK(level >= 0 && level <= 32);
  const uint32_t base = level == 0
                            ? 0u
                            : static_cast<uint32_t>(index << (32 - level));
  const uint64_t block = uint64_t{1} << (32 - level);
  const uint32_t offset = static_cast<uint32_t>(rng->UniformInt(block));
  return FromAddress(base + offset);
}

Point Ipv4Domain::CellCenter(int level, uint64_t index) const {
  PRIVHP_DCHECK(level >= 0 && level <= 32);
  const double base =
      level == 0 ? 0.0
                 : static_cast<double>(index) * std::ldexp(1.0, -level);
  return Point{base + std::ldexp(0.5, -level)};
}

double Ipv4Domain::Distance(const Point& a, const Point& b) const {
  return std::abs(a[0] - b[0]);
}

Point Ipv4Domain::FromAddress(uint32_t address) {
  return Point{static_cast<double>(address) / kScale};
}

uint32_t Ipv4Domain::ToAddress(const Point& x) {
  PRIVHP_DCHECK(x.size() == 1);
  double v = x[0] * kScale;
  if (v < 0.0) v = 0.0;
  if (v >= kScale) v = kScale - 1.0;
  return static_cast<uint32_t>(v);
}

Result<uint32_t> Ipv4Domain::ParseAddress(const std::string& dotted) {
  unsigned a, b, c, d;
  char extra;
  const int n =
      std::sscanf(dotted.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &extra);
  if (n != 4 || a > 255 || b > 255 || c > 255 || d > 255) {
    return Status::InvalidArgument("not a dotted-quad IPv4 address: " +
                                   dotted);
  }
  return (a << 24) | (b << 16) | (c << 8) | d;
}

std::string Ipv4Domain::FormatAddress(uint32_t address) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", address >> 24,
                (address >> 16) & 0xff, (address >> 8) & 0xff,
                address & 0xff);
  return buf;
}

std::string Ipv4Domain::FormatCidr(int level, uint64_t index) {
  const uint32_t base =
      level == 0 ? 0u : static_cast<uint32_t>(index << (32 - level));
  return FormatAddress(base) + "/" + std::to_string(level);
}

}  // namespace privhp
