#include "domain/interval_domain.h"

namespace privhp {

IntervalDomain::IntervalDomain(int max_level)
    : BoxDomain("interval[0,1]", {0.0}, {1.0}, max_level) {}

}  // namespace privhp
