// The hypercube [0,1]^d under l_infinity — the paper's d >= 2 benchmark
// domain (Corollary 1, second case).

#ifndef PRIVHP_DOMAIN_HYPERCUBE_DOMAIN_H_
#define PRIVHP_DOMAIN_HYPERCUBE_DOMAIN_H_

#include "domain/box_domain.h"

namespace privhp {

/// \brief Omega = [0,1]^d with cyclic coordinate-hyperplane cuts:
/// gamma_l ~ 2^{-l/d} and Gamma_l = 2^{(1-1/d) l} up to a factor of 2,
/// matching the quantities used in the proof of Corollary 1.
class HypercubeDomain : public BoxDomain {
 public:
  /// \param d Ambient dimension (>= 1).
  explicit HypercubeDomain(int d, int max_level = 40);
};

}  // namespace privhp

#endif  // PRIVHP_DOMAIN_HYPERCUBE_DOMAIN_H_
