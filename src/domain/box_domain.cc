#include "domain/box_domain.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/macros.h"

namespace privhp {

BoxDomain::BoxDomain(std::string name, std::vector<double> lo,
                     std::vector<double> hi, int max_level)
    : name_(std::move(name)),
      lo_(std::move(lo)),
      hi_(std::move(hi)),
      max_level_(max_level) {
  PRIVHP_CHECK(!lo_.empty());
  PRIVHP_CHECK(lo_.size() == hi_.size());
  PRIVHP_CHECK(max_level_ >= 1 && max_level_ <= 62);
  for (size_t i = 0; i < lo_.size(); ++i) PRIVHP_CHECK(lo_[i] < hi_[i]);
}

int BoxDomain::CutsForCoord(int level, int i) const {
  const int d = dimension();
  return level / d + ((level % d) > i ? 1 : 0);
}

bool BoxDomain::Contains(const Point& x) const {
  if (static_cast<int>(x.size()) != dimension()) return false;
  for (size_t i = 0; i < x.size(); ++i) {
    if (!(x[i] >= lo_[i] && x[i] <= hi_[i])) return false;
  }
  return true;
}

uint64_t BoxDomain::Locate(const Point& x, int level) const {
  PRIVHP_DCHECK(level >= 0 && level <= max_level_);
  PRIVHP_DCHECK(Contains(x));
  const int d = dimension();
  // Per-coordinate cell index after all of this level's cuts; the
  // interleaved level index is then read off one cut at a time.
  uint64_t coord_cell[64];
  int coord_cuts[64];
  PRIVHP_CHECK(d <= 64);
  for (int i = 0; i < d; ++i) {
    coord_cuts[i] = CutsForCoord(level, i);
    const double t = (x[i] - lo_[i]) / (hi_[i] - lo_[i]);
    const uint64_t cells = uint64_t{1} << coord_cuts[i];
    uint64_t c = static_cast<uint64_t>(t * static_cast<double>(cells));
    if (c >= cells) c = cells - 1;  // x at the upper boundary
    coord_cell[i] = c;
  }
  uint64_t index = 0;
  for (int step = 0; step < level; ++step) {
    const int coord = step % d;
    const int cut = step / d;  // 0-based cut number for this coordinate
    const int bit = static_cast<int>(
        (coord_cell[coord] >> (coord_cuts[coord] - 1 - cut)) & 1u);
    index = (index << 1) | static_cast<uint64_t>(bit);
  }
  return index;
}

Status BoxDomain::ValidateBatch(const Point* points, size_t count) const {
  const size_t d = lo_.size();
  const double* lo = lo_.data();
  const double* hi = hi_.data();
  for (size_t i = 0; i < count; ++i) {
    const Point& x = points[i];
    bool inside = x.size() == d;
    const double* xs = x.data();
    for (size_t c = 0; inside && c < d; ++c) {
      // Negated-compare form matches Contains(): NaN coordinates fail.
      inside = xs[c] >= lo[c] && xs[c] <= hi[c];
    }
    if (!inside) {
      const Status valid = ValidatePoint(x);
      return Status(valid.code(), "batch point " + std::to_string(i) +
                                      ": " + valid.message());
    }
  }
  return Status::OK();
}

void BoxDomain::LocatePathBatch(const Point* points, size_t count, int max,
                                uint64_t* out) const {
  PRIVHP_DCHECK(max >= 0 && max <= max_level_);
  const int d = dimension();
  PRIVHP_CHECK(d <= 64);
  // The cut count per coordinate depends only on `max`, so it is hoisted
  // out of the per-point loop. The per-point arithmetic below must stay
  // exactly Locate()'s (same division, same cast, same boundary clamp):
  // the batched and scalar ingest paths are required to agree bit-for-bit.
  int coord_cuts[64];
  for (int i = 0; i < d; ++i) coord_cuts[i] = CutsForCoord(max, i);
  uint64_t coord_cell[64];
  for (size_t p = 0; p < count; ++p) {
    const Point& x = points[p];
    PRIVHP_DCHECK(Contains(x));
    for (int i = 0; i < d; ++i) {
      const double t = (x[i] - lo_[i]) / (hi_[i] - lo_[i]);
      const uint64_t cells = uint64_t{1} << coord_cuts[i];
      uint64_t c = static_cast<uint64_t>(t * static_cast<double>(cells));
      if (c >= cells) c = cells - 1;  // x at the upper boundary
      coord_cell[i] = c;
    }
    uint64_t index = 0;
    for (int step = 0; step < max; ++step) {
      const int coord = step % d;
      const int cut = step / d;
      const int bit = static_cast<int>(
          (coord_cell[coord] >> (coord_cuts[coord] - 1 - cut)) & 1u);
      index = (index << 1) | static_cast<uint64_t>(bit);
    }
    for (int l = 0; l <= max; ++l) {
      out[static_cast<size_t>(l) * count + p] = index >> (max - l);
    }
  }
}

double BoxDomain::CellDiameter(int level) const {
  PRIVHP_DCHECK(level >= 0 && level <= max_level_);
  double diam = 0.0;
  for (int i = 0; i < dimension(); ++i) {
    const double side =
        (hi_[i] - lo_[i]) * std::ldexp(1.0, -CutsForCoord(level, i));
    diam = std::max(diam, side);
  }
  return diam;
}

double BoxDomain::LevelDiameterSum(int level) const {
  // All level-l cells are congruent boxes, so Gamma_l = 2^l * gamma_l.
  return std::ldexp(1.0, level) * CellDiameter(level);
}

void BoxDomain::CellBounds(int level, uint64_t index,
                           std::vector<double>* cell_lo,
                           std::vector<double>* cell_hi) const {
  PRIVHP_DCHECK(level >= 0 && level <= max_level_);
  PRIVHP_DCHECK(index < (uint64_t{1} << level));
  *cell_lo = lo_;
  *cell_hi = hi_;
  const int d = dimension();
  for (int step = 0; step < level; ++step) {
    const int coord = step % d;
    const double mid = 0.5 * ((*cell_lo)[coord] + (*cell_hi)[coord]);
    if (PrefixBit(index, level, step)) {
      (*cell_lo)[coord] = mid;
    } else {
      (*cell_hi)[coord] = mid;
    }
  }
}

Point BoxDomain::SampleCell(int level, uint64_t index,
                            RandomEngine* rng) const {
  std::vector<double> cell_lo, cell_hi;
  CellBounds(level, index, &cell_lo, &cell_hi);
  Point p(dimension());
  for (int i = 0; i < dimension(); ++i) {
    p[i] = rng->UniformDouble(cell_lo[i], cell_hi[i]);
  }
  return p;
}

Point BoxDomain::CellCenter(int level, uint64_t index) const {
  std::vector<double> cell_lo, cell_hi;
  CellBounds(level, index, &cell_lo, &cell_hi);
  Point center(dimension());
  for (int i = 0; i < dimension(); ++i) {
    center[i] = 0.5 * (cell_lo[i] + cell_hi[i]);
  }
  return center;
}

double BoxDomain::Distance(const Point& a, const Point& b) const {
  PRIVHP_DCHECK(a.size() == b.size());
  double dist = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dist = std::max(dist, std::abs(a[i] - b[i]));
  }
  return dist;
}

}  // namespace privhp
