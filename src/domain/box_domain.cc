#include "domain/box_domain.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/bits.h"
#include "common/macros.h"
#include "common/simd.h"

namespace privhp {

BoxDomain::BoxDomain(std::string name, std::vector<double> lo,
                     std::vector<double> hi, int max_level)
    : name_(std::move(name)),
      lo_(std::move(lo)),
      hi_(std::move(hi)),
      max_level_(max_level) {
  PRIVHP_CHECK(!lo_.empty());
  PRIVHP_CHECK(lo_.size() == hi_.size());
  PRIVHP_CHECK(max_level_ >= 1 && max_level_ <= 62);
  for (size_t i = 0; i < lo_.size(); ++i) PRIVHP_CHECK(lo_[i] < hi_[i]);
  // Tile the bounds for the SIMD kernels: tile_ = lcm(d, 8) keeps the
  // per-coordinate pattern aligned with both the point grid and the
  // widest vector (see box_domain.h).
  const size_t d = lo_.size();
  tile_ = d * (8 / std::gcd(d, size_t{8}));
  lo_pat_.resize(tile_);
  hi_pat_.resize(tile_);
  ext_pat_.resize(tile_);
  for (size_t k = 0; k < tile_; ++k) {
    lo_pat_[k] = lo_[k % d];
    hi_pat_[k] = hi_[k % d];
    // The exact denominator Locate() divides by.
    ext_pat_[k] = hi_[k % d] - lo_[k % d];
  }
}

int BoxDomain::CutsForCoord(int level, int i) const {
  const int d = dimension();
  return level / d + ((level % d) > i ? 1 : 0);
}

bool BoxDomain::Contains(const Point& x) const {
  if (static_cast<int>(x.size()) != dimension()) return false;
  for (size_t i = 0; i < x.size(); ++i) {
    if (!(x[i] >= lo_[i] && x[i] <= hi_[i])) return false;
  }
  return true;
}

uint64_t BoxDomain::Locate(const Point& x, int level) const {
  PRIVHP_DCHECK(level >= 0 && level <= max_level_);
  PRIVHP_DCHECK(Contains(x));
  const int d = dimension();
  // Per-coordinate cell index after all of this level's cuts; the
  // interleaved level index is then read off one cut at a time.
  uint64_t coord_cell[64];
  int coord_cuts[64];
  PRIVHP_CHECK(d <= 64);
  for (int i = 0; i < d; ++i) {
    coord_cuts[i] = CutsForCoord(level, i);
    const double t = (x[i] - lo_[i]) / (hi_[i] - lo_[i]);
    const uint64_t cells = uint64_t{1} << coord_cuts[i];
    uint64_t c = static_cast<uint64_t>(t * static_cast<double>(cells));
    if (c >= cells) c = cells - 1;  // x at the upper boundary
    coord_cell[i] = c;
  }
  uint64_t index = 0;
  for (int step = 0; step < level; ++step) {
    const int coord = step % d;
    const int cut = step / d;  // 0-based cut number for this coordinate
    const int bit = static_cast<int>(
        (coord_cell[coord] >> (coord_cuts[coord] - 1 - cut)) & 1u);
    index = (index << 1) | static_cast<uint64_t>(bit);
  }
  return index;
}

Status BoxDomain::ValidateBatch(const Point* points, size_t count) const {
  const size_t d = lo_.size();
  const double* lo = lo_.data();
  const double* hi = hi_.data();
  for (size_t i = 0; i < count; ++i) {
    const Point& x = points[i];
    bool inside = x.size() == d;
    const double* xs = x.data();
    for (size_t c = 0; inside && c < d; ++c) {
      // Negated-compare form matches Contains(): NaN coordinates fail.
      inside = xs[c] >= lo[c] && xs[c] <= hi[c];
    }
    if (!inside) {
      const Status valid = ValidatePoint(x);
      return Status(valid.code(), "batch point " + std::to_string(i) +
                                      ": " + valid.message());
    }
  }
  return Status::OK();
}

Status BoxDomain::ValidateBatch(const double* flat, int dim,
                                size_t count) const {
  if (count == 0) return Status::OK();
  const size_t d = lo_.size();
  if (static_cast<size_t>(dim) != d) {
    // Arity is batch-wide in the columnar form; report it the way the
    // per-point path would for the first point.
    return Status::InvalidArgument(
        "batch point 0: point has " + std::to_string(dim) +
        " coordinates, domain '" + Name() + "' expects " +
        std::to_string(d));
  }
  const size_t n = count * d;
  const size_t bad =
      simd::FindOutOfBounds(flat, n, lo_pat_.data(), hi_pat_.data(), tile_);
  if (bad == n) return Status::OK();
  const size_t i = bad / d;
  const double* row = flat + i * d;
  const Status valid = ValidatePoint(Point(row, row + d));
  return Status(valid.code(),
                "batch point " + std::to_string(i) + ": " + valid.message());
}

void BoxDomain::LocatePathBatch(const double* flat, int dim, size_t count,
                                int max, uint64_t* out) const {
  PRIVHP_DCHECK(max >= 0 && max <= max_level_);
  PRIVHP_DCHECK(dim == dimension());
  (void)dim;  // only consumed by the debug check above
  const int d = dimension();
  PRIVHP_CHECK(d <= 64);
  int coord_cuts[64];
  for (int i = 0; i < d; ++i) coord_cuts[i] = CutsForCoord(max, i);
  // Phase 1 (vectorized): per-coordinate cut positions
  // t*2^cuts = ((x - lo) / (hi - lo)) * cells over the whole arena, with
  // the division and multiplication kept as two rounded steps so the
  // values match Locate() bit-for-bit. Thread-local scratch: callers
  // chunk batches (PrivHPShard), so this stays a bounded allocation.
  thread_local std::vector<double> cells_pat;
  thread_local std::vector<double> positions;
  cells_pat.resize(tile_);
  for (size_t k = 0; k < tile_; ++k) {
    cells_pat[k] = static_cast<double>(
        uint64_t{1} << coord_cuts[k % static_cast<size_t>(d)]);
  }
  const size_t n = count * static_cast<size_t>(d);
  positions.resize(n);
  simd::ScaledCutPositions(flat, n, lo_pat_.data(), ext_pat_.data(),
                           cells_pat.data(), tile_, positions.data());
  // Phase 2 (scalar): truncate, clamp, and bit-interleave. For d == 1
  // the interleave is the identity (coord_cuts[0] == max and the bits
  // are read MSB-to-LSB), so the deepest index IS the clamped cell.
  if (d == 1) {
    const uint64_t cells = uint64_t{1} << max;
    for (size_t p = 0; p < count; ++p) {
      uint64_t c = static_cast<uint64_t>(positions[p]);
      if (c >= cells) c = cells - 1;  // x at the upper boundary
      for (int l = 0; l <= max; ++l) {
        out[static_cast<size_t>(l) * count + p] = c >> (max - l);
      }
    }
    return;
  }
  for (size_t p = 0; p < count; ++p) {
    const double* pos = positions.data() + p * static_cast<size_t>(d);
    // Bit-interleave coordinate-major: coordinate i's cut bits land at
    // positions max-1-i, max-1-i-d, ... (cut c of coordinate i is step
    // c*d+i of the cyclic walk). Each coordinate's spread is an
    // independent dependency chain, unlike the step-major walk, and no
    // per-step division is needed. Produces exactly Locate()'s index.
    uint64_t index = 0;
    for (int i = 0; i < d; ++i) {
      const int cuts = coord_cuts[i];
      const uint64_t cells = uint64_t{1} << cuts;
      uint64_t c = static_cast<uint64_t>(pos[i]);
      if (c >= cells) c = cells - 1;  // x at the upper boundary
      int at = max - 1 - i;           // position of this coord's MSB cut
      for (int cut = cuts - 1; cut >= 0; --cut) {
        index |= ((c >> cut) & 1u) << at;
        at -= d;
      }
    }
    for (int l = 0; l <= max; ++l) {
      out[static_cast<size_t>(l) * count + p] = index >> (max - l);
    }
  }
}

void BoxDomain::LocatePathBatch(const Point* points, size_t count, int max,
                                uint64_t* out) const {
  PRIVHP_DCHECK(max >= 0 && max <= max_level_);
  const int d = dimension();
  PRIVHP_CHECK(d <= 64);
  // The cut count per coordinate depends only on `max`, so it is hoisted
  // out of the per-point loop. The per-point arithmetic below must stay
  // exactly Locate()'s (same division, same cast, same boundary clamp):
  // the batched and scalar ingest paths are required to agree bit-for-bit.
  int coord_cuts[64];
  for (int i = 0; i < d; ++i) coord_cuts[i] = CutsForCoord(max, i);
  for (size_t p = 0; p < count; ++p) {
    const Point& x = points[p];
    PRIVHP_DCHECK(Contains(x));
    // Coordinate-major bit interleave, same scheme as the flat overload:
    // coordinate i's cut bits land at positions max-1-i, max-1-i-d, ...
    uint64_t index = 0;
    for (int i = 0; i < d; ++i) {
      const int cuts = coord_cuts[i];
      const double t = (x[i] - lo_[i]) / (hi_[i] - lo_[i]);
      const uint64_t cells = uint64_t{1} << cuts;
      uint64_t c = static_cast<uint64_t>(t * static_cast<double>(cells));
      if (c >= cells) c = cells - 1;  // x at the upper boundary
      int at = max - 1 - i;
      for (int cut = cuts - 1; cut >= 0; --cut) {
        index |= ((c >> cut) & 1u) << at;
        at -= d;
      }
    }
    for (int l = 0; l <= max; ++l) {
      out[static_cast<size_t>(l) * count + p] = index >> (max - l);
    }
  }
}

double BoxDomain::CellDiameter(int level) const {
  PRIVHP_DCHECK(level >= 0 && level <= max_level_);
  double diam = 0.0;
  for (int i = 0; i < dimension(); ++i) {
    const double side =
        (hi_[i] - lo_[i]) * std::ldexp(1.0, -CutsForCoord(level, i));
    diam = std::max(diam, side);
  }
  return diam;
}

double BoxDomain::LevelDiameterSum(int level) const {
  // All level-l cells are congruent boxes, so Gamma_l = 2^l * gamma_l.
  return std::ldexp(1.0, level) * CellDiameter(level);
}

void BoxDomain::CellBoundsWalk(int level, uint64_t index, double* lo,
                               double* hi) const {
  const int d = dimension();
  for (int step = 0; step < level; ++step) {
    const int coord = step % d;
    const double mid = 0.5 * (lo[coord] + hi[coord]);
    if (PrefixBit(index, level, step)) {
      lo[coord] = mid;
    } else {
      hi[coord] = mid;
    }
  }
}

void BoxDomain::CellBounds(int level, uint64_t index,
                           std::vector<double>* cell_lo,
                           std::vector<double>* cell_hi) const {
  PRIVHP_DCHECK(level >= 0 && level <= max_level_);
  PRIVHP_DCHECK(index < (uint64_t{1} << level));
  *cell_lo = lo_;
  *cell_hi = hi_;
  CellBoundsWalk(level, index, cell_lo->data(), cell_hi->data());
}

bool BoxDomain::CellBoundsFor(int level, uint64_t index, double* lo,
                              double* hi) const {
  PRIVHP_DCHECK(level >= 0 && level <= max_level_);
  PRIVHP_DCHECK(index < (uint64_t{1} << level));
  std::copy(lo_.begin(), lo_.end(), lo);
  std::copy(hi_.begin(), hi_.end(), hi);
  CellBoundsWalk(level, index, lo, hi);
  return true;
}

Point BoxDomain::SampleCell(int level, uint64_t index,
                            RandomEngine* rng) const {
  std::vector<double> cell_lo, cell_hi;
  CellBounds(level, index, &cell_lo, &cell_hi);
  Point p(dimension());
  for (int i = 0; i < dimension(); ++i) {
    p[i] = rng->UniformDouble(cell_lo[i], cell_hi[i]);
  }
  return p;
}

Point BoxDomain::CellCenter(int level, uint64_t index) const {
  std::vector<double> cell_lo, cell_hi;
  CellBounds(level, index, &cell_lo, &cell_hi);
  Point center(dimension());
  for (int i = 0; i < dimension(); ++i) {
    center[i] = 0.5 * (cell_lo[i] + cell_hi[i]);
  }
  return center;
}

double BoxDomain::Distance(const Point& a, const Point& b) const {
  PRIVHP_DCHECK(a.size() == b.size());
  double dist = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dist = std::max(dist, std::abs(a[i] - b[i]));
  }
  return dist;
}

}  // namespace privhp
