#include "domain/hypercube_domain.h"

#include "common/macros.h"

namespace privhp {

namespace {
std::vector<double> Zeros(int d) { return std::vector<double>(d, 0.0); }
std::vector<double> Ones(int d) { return std::vector<double>(d, 1.0); }
}  // namespace

HypercubeDomain::HypercubeDomain(int d, int max_level)
    : BoxDomain("hypercube[0,1]^" + std::to_string(d), Zeros(d), Ones(d),
                max_level) {
  PRIVHP_CHECK(d >= 1);
}

}  // namespace privhp
