// Columnar point storage: one contiguous arena for a whole batch.
//
// Point = std::vector<double> is the right currency for single points,
// but a hot loop over std::vector<Point> pays one heap allocation and
// one pointer chase per point. PointBatch stores a batch as a single
// row-major (point-major) double arena — point i occupies
// data()[i*dim .. i*dim+dim) — which
//
//   * makes appending a point a bounds-checked copy of `dim` doubles
//     (zero per-point allocation once capacity is reserved),
//   * matches the wire point-batch frame layout exactly, so encode and
//     decode are one bounds-checked memcpy on little-endian hosts, and
//   * exposes the flat array the SIMD kernels (common/simd.h) need:
//     coordinate j of the arena belongs to point j/dim, coordinate
//     j%dim, so per-coordinate patterns tile with period dim.
//
// The batched ingest and sampling paths (PointSource::NextBatch,
// PointSink::AddAll, PrivHPShard::AddBatch, CompiledSampler::SampleTo)
// all speak PointBatch; std::vector<Point> overloads remain as the
// compatibility currency and convert through FromPoints/CopyTo.

#ifndef PRIVHP_DOMAIN_POINT_BATCH_H_
#define PRIVHP_DOMAIN_POINT_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace privhp {

/// \brief A point in the input domain. Coordinate count equals
/// Domain::dimension().
using Point = std::vector<double>;

/// \brief A batch of equal-dimension points in one contiguous arena.
class PointBatch {
 public:
  PointBatch() = default;
  /// \brief Empty batch of \p dim-coordinate points (dim >= 1).
  explicit PointBatch(int dim) { Reset(dim); }

  /// \brief Clears and sets the dimension; capacity is kept, so a reused
  /// batch allocates only on growth.
  void Reset(int dim);

  /// \brief Clears the points, keeping dimension and capacity.
  void Clear() { data_.clear(); }

  /// \brief Reserves room for \p points points.
  void Reserve(size_t points) { data_.reserve(points * Stride()); }

  int dim() const { return dim_; }
  size_t size() const { return dim_ == 0 ? 0 : data_.size() / Stride(); }
  bool empty() const { return data_.empty(); }

  /// \brief Appends one uninitialized point and returns its row (valid
  /// until the next append).
  double* AppendRow();

  /// \brief Appends \p count uninitialized points and returns the first
  /// new row (valid until the next append). The wire decode path and
  /// the sampler write coordinates straight into the returned block.
  double* AppendRows(size_t count);

  /// \brief Appends \p count points from a flat row-major array of
  /// count*dim doubles.
  void AppendFlat(const double* flat, size_t count);

  /// \brief Appends a copy of \p p (p.size() must equal dim()).
  void AppendPoint(const Point& p);

  /// \brief Appends every point of \p points.
  void AppendPoints(const std::vector<Point>& points);

  /// \brief Row of point \p i: `dim()` contiguous coordinates.
  const double* row(size_t i) const { return data_.data() + i * Stride(); }
  double* row(size_t i) { return data_.data() + i * Stride(); }

  /// \brief The whole arena (size() * dim() doubles, row-major).
  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

  /// \brief Materializes point \p i as a Point.
  Point At(size_t i) const;

  /// \brief Appends all points to \p out as Points.
  void CopyTo(std::vector<Point>* out) const;

  /// \brief The batch as a vector of Points (compatibility currency).
  std::vector<Point> ToPoints() const;

  /// \brief Builds a batch from equal-dimension points. \p dim resolves
  /// an empty input's dimension; when < 0 it is taken from the first
  /// point (0 if none).
  static PointBatch FromPoints(const std::vector<Point>& points,
                               int dim = -1);

  /// \brief Bytes held by the arena (capacity, not size).
  size_t MemoryBytes() const {
    return sizeof(*this) + data_.capacity() * sizeof(double);
  }

  friend bool operator==(const PointBatch& a, const PointBatch& b) {
    return a.dim_ == b.dim_ && a.data_ == b.data_;
  }
  friend bool operator!=(const PointBatch& a, const PointBatch& b) {
    return !(a == b);
  }

 private:
  size_t Stride() const { return static_cast<size_t>(dim_); }

  int dim_ = 0;
  std::vector<double> data_;  // size() * dim_, row-major
};

}  // namespace privhp

#endif  // PRIVHP_DOMAIN_POINT_BATCH_H_
