// Geographic coordinates as a metric domain — the other application domain
// the paper motivates (Section 1.2). A latitude/longitude bounding box with
// alternating latitude/longitude cuts (a quadtree-style decomposition
// linearized into a binary hierarchy).

#ifndef PRIVHP_DOMAIN_GEO_DOMAIN_H_
#define PRIVHP_DOMAIN_GEO_DOMAIN_H_

#include "domain/box_domain.h"

namespace privhp {

/// \brief A lat/lon bounding box under l_infinity in degrees.
///
/// Points are {latitude, longitude}. The metric is max of coordinate
/// differences in degrees — a constant-factor surrogate for great-circle
/// distance over city/region-scale boxes, which is all the W1 analysis
/// needs (any bi-Lipschitz change of metric shifts bounds by a constant).
class GeoDomain : public BoxDomain {
 public:
  /// \param lat_min,lat_max,lon_min,lon_max Box bounds in degrees.
  GeoDomain(double lat_min, double lat_max, double lon_min, double lon_max,
            int max_level = 40);

  /// \brief Convenience: wraps lat/lon into a Point.
  static Point Make(double lat, double lon) { return Point{lat, lon}; }
};

}  // namespace privhp

#endif  // PRIVHP_DOMAIN_GEO_DOMAIN_H_
