// Axis-aligned box domains under the l_infinity metric with cyclic
// coordinate cuts. This is the shared implementation behind
// IntervalDomain, HypercubeDomain and GeoDomain.

#ifndef PRIVHP_DOMAIN_BOX_DOMAIN_H_
#define PRIVHP_DOMAIN_BOX_DOMAIN_H_

#include <string>
#include <vector>

#include "domain/domain.h"

namespace privhp {

/// \brief Box [lo_0,hi_0] x ... x [lo_{d-1},hi_{d-1}] with the natural
/// binary decomposition: level l+1 halves level-l cells along coordinate
/// (l mod d), so every coordinate is halved once per d levels.
///
/// Under l_infinity, gamma_l = max_i extent_i * 2^{-cuts_i(l)} where
/// cuts_i(l) = floor(l/d) + [ (l mod d) > i ], and Gamma_l = 2^l * gamma_l
/// (all level-l cells are congruent).
class BoxDomain : public Domain {
 public:
  /// \param name Report name.
  /// \param lo,hi Per-coordinate bounds; requires lo[i] < hi[i].
  /// \param max_level Deepest supported level (<= 62).
  BoxDomain(std::string name, std::vector<double> lo, std::vector<double> hi,
            int max_level = 40);

  int dimension() const override { return static_cast<int>(lo_.size()); }
  int max_level() const override { return max_level_; }
  std::string Name() const override { return name_; }

  bool Contains(const Point& x) const override;
  uint64_t Locate(const Point& x, int level) const override;
  double CellDiameter(int level) const override;
  double LevelDiameterSum(int level) const override;
  Point SampleCell(int level, uint64_t index,
                   RandomEngine* rng) const override;
  Point CellCenter(int level, uint64_t index) const override;
  double Distance(const Point& a, const Point& b) const override;

  /// \brief Batched locate with the per-coordinate cut counts hoisted out
  /// of the per-point loop and no virtual dispatch inside it. Produces
  /// exactly Locate(x, max)'s indices (same arithmetic, same boundary
  /// clamps), so the batched ingest path stays bit-identical to scalar.
  void LocatePathBatch(const Point* points, size_t count, int max,
                       uint64_t* out) const override;

  /// \brief Columnar locate over a row-major arena: the per-coordinate
  /// cut positions ((x - lo) / (hi - lo)) * 2^cuts run through the SIMD
  /// kernel (common/simd.h) over the flat array, then the cast, clamp
  /// and bit-interleave per point. Division and multiplication stay two
  /// correctly-rounded steps, so results are bit-identical to Locate().
  void LocatePathBatch(const double* flat, int dim, size_t count, int max,
                       uint64_t* out) const override;
  using Domain::LocatePathBatch;

  /// \brief Devirtualized batch validation: one bounds scan with the box
  /// limits hoisted; failures fall back to ValidatePoint for the exact
  /// per-point status code and message.
  Status ValidateBatch(const Point* points, size_t count) const override;

  /// \brief Columnar batch validation: one SIMD bounds scan over the
  /// arena (NaN-safe negated compares); a hit falls back to
  /// ValidatePoint on the offending row for the exact message.
  Status ValidateBatch(const double* flat, int dim,
                       size_t count) const override;
  using Domain::ValidateBatch;

  /// \brief Bounds [lo, hi) of cell \p index at \p level along each
  /// coordinate; used by tests and the figure walk-throughs.
  void CellBounds(int level, uint64_t index, std::vector<double>* cell_lo,
                  std::vector<double>* cell_hi) const;

  /// \brief Box domains have closed-form cell bounds: the same midpoint
  /// walk as CellBounds, written into caller arrays. Lets
  /// CompiledSampler precompute per-slot bounds tables.
  bool CellBoundsFor(int level, uint64_t index, double* lo,
                     double* hi) const override;

 private:
  // Number of times coordinate i has been halved after `level` cuts.
  int CutsForCoord(int level, int i) const;

  // Midpoint walk shared by CellBounds/CellBoundsFor; lo/hi hold
  // dimension() doubles and enter as the domain bounds.
  void CellBoundsWalk(int level, uint64_t index, double* lo,
                      double* hi) const;

  std::string name_;
  std::vector<double> lo_;
  std::vector<double> hi_;
  int max_level_;
  // SIMD pattern arrays: the box bounds (and hi-lo extents) tiled to
  // tile_ = lcm(dimension(), 8) doubles, so coordinate j of a flat
  // arena matches pattern slot j % tile_ and vector loads of the
  // pattern stay aligned to the point grid (common/simd.h).
  size_t tile_;
  std::vector<double> lo_pat_;
  std::vector<double> hi_pat_;
  std::vector<double> ext_pat_;
};

}  // namespace privhp

#endif  // PRIVHP_DOMAIN_BOX_DOMAIN_H_
