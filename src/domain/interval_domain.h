// The unit interval [0,1] with dyadic decomposition — the paper's d = 1
// benchmark domain (Corollary 1, first case).

#ifndef PRIVHP_DOMAIN_INTERVAL_DOMAIN_H_
#define PRIVHP_DOMAIN_INTERVAL_DOMAIN_H_

#include "domain/box_domain.h"

namespace privhp {

/// \brief Omega = [0,1]: level-l cells are the dyadic intervals
/// [i 2^-l, (i+1) 2^-l), so gamma_l = 2^-l and Gamma_l = 1.
class IntervalDomain : public BoxDomain {
 public:
  explicit IntervalDomain(int max_level = 40);

  /// \brief Convenience: wraps a scalar into a Point.
  static Point Make(double x) { return Point{x}; }
};

}  // namespace privhp

#endif  // PRIVHP_DOMAIN_INTERVAL_DOMAIN_H_
