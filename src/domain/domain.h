// Metric-space domains with binary hierarchical decomposition.
//
// PrivHP's analysis (Theorem 3) holds for any metric space (Omega, rho)
// equipped with a fixed binary decomposition: at level l the domain is
// split into 2^l disjoint cells indexed by theta in {0,1}^l. A Domain
// supplies everything the hierarchy machinery needs:
//
//   * Locate(x, l)        -> index of the unique level-l cell containing x
//   * CellDiameter(l)     -> gamma_l  = max_theta diam(Omega_theta)
//   * LevelDiameterSum(l) -> Gamma_l  = sum_theta diam(Omega_theta)
//   * SampleCell(l, i)    -> uniform point from cell i at level l
//
// Cell indices are the natural binary encoding of theta: the level-l cell
// with index i has children 2i and 2i+1 at level l+1.

#ifndef PRIVHP_DOMAIN_DOMAIN_H_
#define PRIVHP_DOMAIN_DOMAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "domain/point_batch.h"

namespace privhp {

/// \brief Identifies one subdomain Omega_theta: `level` = |theta|,
/// `index` = theta read as a binary number (MSB = first split).
struct CellId {
  int level = 0;
  uint64_t index = 0;

  bool operator==(const CellId& other) const {
    return level == other.level && index == other.index;
  }
  bool operator!=(const CellId& other) const { return !(*this == other); }

  /// \brief Parent cell (level must be >= 1).
  CellId Parent() const { return {level - 1, index >> 1}; }
  /// \brief Left child (theta . 0).
  CellId Left() const { return {level + 1, index << 1}; }
  /// \brief Right child (theta . 1).
  CellId Right() const { return {level + 1, (index << 1) | 1u}; }
};

/// \brief Abstract metric domain with a fixed binary decomposition.
///
/// Implementations must be deterministic: the cell boundaries are fixed a
/// priori (paper Section 4.1) and independent of the data.
class Domain {
 public:
  virtual ~Domain() = default;

  /// \brief Ambient dimension of points.
  virtual int dimension() const = 0;

  /// \brief Deepest level the decomposition supports (>= any hierarchy
  /// depth L used with this domain).
  virtual int max_level() const = 0;

  /// \brief Human-readable name for reports.
  virtual std::string Name() const = 0;

  /// \brief True iff \p x lies in Omega.
  virtual bool Contains(const Point& x) const = 0;

  /// \brief Index of the unique level-\p level cell containing \p x.
  ///
  /// Requires Contains(x) and 0 <= level <= max_level(). Locate(x, 0) == 0.
  virtual uint64_t Locate(const Point& x, int level) const = 0;

  /// \brief gamma_l: the maximum diameter of a level-\p level cell.
  virtual double CellDiameter(int level) const = 0;

  /// \brief Gamma_l: the sum of diameters of all 2^level cells.
  virtual double LevelDiameterSum(int level) const = 0;

  /// \brief Uniform sample from the level-\p level cell with index \p index.
  virtual Point SampleCell(int level, uint64_t index,
                           RandomEngine* rng) const = 0;

  /// \brief Deterministic representative (centroid) of a cell; used as the
  /// transport support point in EMD evaluation. The default averages
  /// fixed-seed uniform draws; box-style domains override with the exact
  /// midpoint.
  virtual Point CellCenter(int level, uint64_t index) const;

  /// \brief Distance between two points under this domain's metric.
  virtual double Distance(const Point& a, const Point& b) const = 0;

  /// \brief Validates that \p x is a well-formed point for this domain.
  Status ValidatePoint(const Point& x) const;

  /// \brief Validates \p count points, returning OK or the first
  /// failure wrapped as "batch point <i>: <reason>" (same status codes
  /// as ValidatePoint). The batched ingest path validates every batch up
  /// front before touching any state; the default loops ValidatePoint,
  /// and concrete domains may override with a devirtualized scan.
  virtual Status ValidateBatch(const Point* points, size_t count) const;

  /// \brief Columnar form over a row-major arena of \p count points of
  /// \p dim coordinates each. Same contract and error text as the
  /// Point-array form; the default stages one scratch Point per row, and
  /// box-style domains override with a SIMD bounds scan.
  virtual Status ValidateBatch(const double* flat, int dim,
                               size_t count) const;

  /// \brief PointBatch convenience (forwards to the flat overload).
  Status ValidateBatch(const PointBatch& batch) const {
    return ValidateBatch(batch.data(), batch.dim(), batch.size());
  }

  /// \brief Axis-aligned bounds of cell (\p level, \p index) when the
  /// domain has them in closed form: fills \p lo and \p hi (dimension()
  /// doubles each) and returns true. The default returns false, which
  /// sends batched samplers down the generic SampleCell path; box-style
  /// domains override so CompiledSampler can precompute per-slot bounds
  /// tables for the SIMD in-cell uniform step.
  virtual bool CellBoundsFor(int level, uint64_t index, double* lo,
                             double* hi) const;

  /// \brief Locate all levels 0..max in one pass: out[l] = Locate(x, l).
  ///
  /// Default implementation derives all prefixes from Locate(x, max);
  /// correct because cell indices are prefix codes.
  void LocatePath(const Point& x, int max, std::vector<uint64_t>* out) const;

  /// \brief Batched LocatePath over \p count points, written level-major
  /// into caller-owned scratch: out[l * count + i] = Locate(points[i], l)
  /// for 0 <= l <= max. The level-major layout hands each level's cell
  /// keys to batched consumers (counter bumps, sketch row updates) as one
  /// contiguous run. One virtual call per batch; the default derives all
  /// prefixes from Locate(x, max) per point, and concrete domains may
  /// override to drop the remaining per-point virtual dispatch.
  virtual void LocatePathBatch(const Point* points, size_t count, int max,
                               uint64_t* out) const;

  /// \brief Columnar form of LocatePathBatch over a row-major arena of
  /// \p count points of \p dim coordinates (dim must equal dimension();
  /// callers validate first). Same level-major output contract; the
  /// default stages one scratch Point per row, and box-style domains
  /// override with the SIMD cut-position kernel. Requires every point to
  /// be contained in the domain (like the Point-array form).
  virtual void LocatePathBatch(const double* flat, int dim, size_t count,
                               int max, uint64_t* out) const;

  /// \brief PointBatch convenience (forwards to the flat overload).
  void LocatePathBatch(const PointBatch& batch, int max,
                       uint64_t* out) const {
    LocatePathBatch(batch.data(), batch.dim(), batch.size(), max, out);
  }
};

}  // namespace privhp

#endif  // PRIVHP_DOMAIN_DOMAIN_H_
